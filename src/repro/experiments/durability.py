"""Durability experiment: redundancy policies × chaos scenarios.

The recovery experiment fixes the redundancy scheme and sweeps the
maintenance budget; this one fixes the budget and sweeps the
:class:`~repro.sim.durability.DurabilityPolicy` — successor-list
replication (the seed scheme), symmetric spread replication and a
``(k, m)`` erasure code — through chaos timelines, asking the questions
Leslie's storage analysis poses:

* **durability** — how many decodable pieces did the timeline destroy
  outright (before/after policy census)?
* **time-to-recover** — how long until the survivors are fully redundant
  again (data TTR: structural invariants + zero replica deficit, with
  the availability floor at 0.0 so genuinely lost pieces do not mask the
  healing of the rest)?
* **repair bandwidth** — how many piece-equivalents did budgeted
  anti-entropy move to get there (copies moved × fragment weight — an
  erasure fragment costs ``1/k`` of a piece)?

Every (system, policy, scenario) cell is seeded and independent: one
service bundle per (policy, scenario), the same probe workload, the same
default maintenance budget and cadence as the chaos demo.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.common import build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.recovery import _probe_cases, chaos_trial
from repro.sim.chaos import CRASH_STORM_SCENARIO, DEMO_SCENARIO, ChaosScenario
from repro.sim.durability import DEFAULT_POLICY_SPECS, DurabilityPolicy, parse_policy
from repro.sim.invariants import directory_census, overlay_of
from repro.sim.maintenance import DEFAULT_BUDGET, MaintenanceScheduler
from repro.utils.formatting import render_table

__all__ = [
    "DurabilityCell",
    "DurabilityResult",
    "run_durability",
    "DEFAULT_SCENARIOS",
    "DEFAULT_SYSTEMS",
]

#: The chaos timelines every policy is subjected to.
DEFAULT_SCENARIOS: tuple[ChaosScenario, ...] = (DEMO_SCENARIO, CRASH_STORM_SCENARIO)

#: One Cycloid-backed and one Chord-backed system keep the sweep honest
#: about both overlay substrates without quadrupling its cost.
DEFAULT_SYSTEMS: tuple[str, ...] = ("LORM", "Mercury")


@dataclass(frozen=True)
class DurabilityCell:
    """One (system, policy, scenario) outcome."""

    system: str
    policy: str
    scenario: str
    #: Decodable pieces in the policy census before any fault.
    pieces_before: int
    #: Pieces the timeline destroyed outright (census shrinkage).
    pieces_lost: int
    #: Worst per-fault data time-to-recover (inf = never healed).
    ttr: float
    #: Replica deficit integrated over the timeline.
    deficit_area: float
    min_availability: float
    final_availability: float
    #: Raw copies moved by every maintenance round's repair leg.
    repair_copies: int
    #: ``repair_copies`` weighted by fragment cost (piece-equivalents).
    repair_bandwidth: float
    #: Bytes stored per byte of data when fully placed.
    storage_overhead: float
    #: Data recovery: every fault healed (finite TTR) and the final
    #: sample is structurally clean with zero replica deficit.
    recovered: bool

    @property
    def ok(self) -> bool:
        return self.recovered and math.isfinite(self.ttr)


@dataclass
class DurabilityResult:
    """The full policy × scenario sweep."""

    config: ExperimentConfig
    cells: list[DurabilityCell] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every cell recovered its surviving data within the horizon."""
        return bool(self.cells) and all(cell.ok for cell in self.cells)

    def table(self) -> str:
        rows = []
        for c in self.cells:
            rows.append([
                c.system,
                c.policy,
                c.scenario,
                str(c.pieces_before),
                str(c.pieces_lost),
                "never" if math.isinf(c.ttr) else f"{c.ttr:.1f}s",
                f"{c.deficit_area:.0f}",
                f"{c.min_availability:.2f}",
                f"{c.final_availability:.2f}",
                str(c.repair_copies),
                f"{c.repair_bandwidth:.1f}",
                f"{c.storage_overhead:.2f}",
                "yes" if c.recovered else "NO",
            ])
        return render_table(
            ["system", "policy", "scenario", "pieces", "lost", "TTR",
             "deficit area", "min avail", "final avail", "repair copies",
             "repair BW", "overhead", "recovered"],
            rows,
            title="durability: redundancy policies under chaos "
            "(TTR/recovered = data recovery, availability floor 0)",
        )

    def render(self) -> str:
        out = self.table()
        if self.notes:
            out += "\n\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def save(self, directory) -> Path:
        """Write ``durability.csv`` + ``durability.txt`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        csv_path = directory / "durability.csv"
        fields = [
            "system", "policy", "scenario", "pieces_before", "pieces_lost",
            "ttr", "deficit_area", "min_availability", "final_availability",
            "repair_copies", "repair_bandwidth", "storage_overhead",
            "recovered",
        ]
        with csv_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(fields)
            for c in self.cells:
                writer.writerow([getattr(c, name) for name in fields])
        (directory / "durability.txt").write_text(self.render() + "\n")
        return csv_path


def _census_size(service, policy: DurabilityPolicy) -> int:
    overlay = overlay_of(service)
    return sum(directory_census(overlay, policy).values())


def run_durability(
    config: ExperimentConfig,
    *,
    policies: tuple[DurabilityPolicy, ...] | None = None,
    scenarios: tuple[ChaosScenario, ...] = DEFAULT_SCENARIOS,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
) -> DurabilityResult:
    """Sweep durability policies × chaos scenarios over ``systems``.

    One freshly built bundle per (policy, scenario) — chaos mutates the
    overlays, so cells never share state — with the default maintenance
    budget on the tightest configured cadence, exactly like the chaos
    demo.  ``policies=None`` runs :data:`~repro.sim.durability.
    DEFAULT_POLICY_SPECS` (successor replication, symmetric replication
    and a (2, 1) erasure code).
    """
    if policies is None:
        policies = tuple(parse_policy(spec) for spec in DEFAULT_POLICY_SPECS)
    interval = min(config.maintenance_intervals)
    result = DurabilityResult(config=config)
    for scenario in scenarios:
        horizon = max(config.recovery_horizon, scenario.horizon() + 4 * interval)
        for policy in policies:
            bundle = build_services(config, register=True, durability=policy)
            cases = _probe_cases(bundle, config.num_recovery_queries)
            for name in systems:
                service = bundle.by_name(name)
                before = _census_size(service, policy)
                scheduler = MaintenanceScheduler(service, DEFAULT_BUDGET, interval)
                tracker = chaos_trial(
                    service, cases, scenario,
                    interval=interval,
                    horizon=horizon,
                    sample_interval=config.recovery_sample_interval,
                    injector_seed=config.seed,
                    availability_floor=0.0,
                    scheduler=scheduler,
                )
                after = _census_size(service, policy)
                copies = sum(r.copies_moved for _, r in scheduler.reports)
                timeline = tracker.availability_timeline()
                result.cells.append(DurabilityCell(
                    system=name,
                    policy=policy.name,
                    scenario=scenario.name,
                    pieces_before=before,
                    pieces_lost=max(0, before - after),
                    ttr=tracker.time_to_reconverge(),
                    deficit_area=tracker.deficit_area(),
                    min_availability=min(a for _, a in timeline),
                    final_availability=timeline[-1][1],
                    repair_copies=copies,
                    repair_bandwidth=copies * policy.fragment_weight,
                    storage_overhead=policy.storage_overhead,
                    recovered=tracker.reconverged,
                ))
    result.notes.append(
        f"default maintenance budget every {interval:g}s; availability floor "
        "0.0 — TTR clocks data recovery (structure + zero replica deficit), "
        "availability is reported alongside; repair BW = copies moved × "
        "fragment weight (an erasure fragment costs 1/k of a piece)."
    )
    result.notes.append(
        "policies: " + ", ".join(
            f"{p.name} (overhead {p.storage_overhead:g}x)" for p in policies
        )
        + "; scenarios: " + ", ".join(s.name for s in scenarios)
        + "; systems: " + ", ".join(systems) + "."
    )
    return result
