"""Experiment configuration (Section V parameters).

The paper's setup: "The dimension was set to 8 in Cycloid and 11 in Chord,
and each DHT had 2048 nodes.  We assumed there were m = 200 resource
attributes, and each attribute had k = 500 values.  We used Bounded Pareto
distribution function to generate resource values…"; Figure 4 uses 100
requesters × 10 queries over 1–10 attributes; Figure 5 uses 1000 range
queries; Figure 6 uses 10000 requests under churn rates R = 0.1 … 0.5.

``PAPER_CONFIG`` encodes those numbers; ``SMOKE_CONFIG`` is a scaled-down
copy with the same *shape* for tests and quick runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.utils.validation import require
from repro.workloads.attributes import AttributeSchema

__all__ = ["ExperimentConfig", "PAPER_CONFIG", "SMOKE_CONFIG"]


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of the paper's evaluation, with the paper's defaults."""

    #: Cycloid dimension d (n = d * 2**d nodes).
    dimension: int = 8
    #: Chord ID-space width; the paper uses 11 (2048 IDs = 2048 nodes).
    chord_bits: int = 11
    #: m — number of resource attributes.
    num_attributes: int = 200
    #: k — resource-information pieces (provider values) per attribute.
    infos_per_attribute: int = 500
    #: Attributes per query swept in Figures 4/5 (1..10 in the paper).
    max_query_attributes: int = 10
    #: Figure 4: requesters × queries-per-requester.
    num_requesters: int = 100
    queries_per_requester: int = 10
    #: Figure 5: number of range queries per point.
    num_range_queries: int = 1000
    #: Figure 6: total resource requests under churn.
    num_churn_requests: int = 10000
    #: Figure 6: churn rates R (events/second per stream).
    churn_rates: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
    #: Query arrival rate (req/s) in the churn experiment.
    churn_query_rate: float = 10.0
    #: Expected hashed-span fraction of range queries (Theorem 4.9's
    #: average case corresponds to 0.25).
    mean_span_fraction: float = 0.25
    #: Locality-preserving hash flavour: "cdf" (default) or "linear".
    lph_kind: str = "cdf"
    #: Bounded-Pareto shape for attribute values.
    pareto_shape: float = 2.0
    #: Master seed.
    seed: int = 2009
    #: Network sizes (Cycloid dimensions) swept in Figure 3(a).
    fig3a_dimensions: tuple[int, ...] = (5, 6, 7, 8, 9)
    #: Availability experiment: per-message loss rates swept.
    loss_rates: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1)
    #: Availability experiment: replication factors swept.
    availability_replications: tuple[int, ...] = (1, 2, 3)
    #: Availability experiment: multi-attribute queries per cell.
    num_availability_queries: int = 120
    #: Availability experiment: fraction of nodes crashed before querying.
    availability_crash_fraction: float = 0.05
    #: Recovery experiment: maintenance-round intervals (seconds) swept.
    maintenance_intervals: tuple[float, ...] = (2.0, 5.0, 10.0)
    #: Recovery experiment: background churn rates R layered under the
    #: chaos timeline (0.0 = faults only).
    recovery_churn_rates: tuple[float, ...] = (0.0, 0.1)
    #: Recovery experiment: simulated horizon of one chaos trial (s).
    recovery_horizon: float = 60.0
    #: Recovery experiment: health-sampling cadence (s).
    recovery_sample_interval: float = 2.0
    #: Recovery experiment: probe multi-attribute queries per sample.
    num_recovery_queries: int = 10
    #: Recovery experiment: replication factor.  Must be >= 2 so crash
    #: bursts leave surviving copies that witness the replica deficit.
    recovery_replication: int = 2
    #: Scale experiment: populations swept on the compact array core
    #: (``repro scale``).  The paper stops at n=2048; these reach the
    #: 10^5–10^6 regime of the single-hop / ReCord literature.
    scale_sizes: tuple[int, ...] = (100_000, 250_000, 500_000, 1_000_000)
    #: Scale experiment: routed lookups measured per population point.
    scale_queries: int = 2000
    #: Scale experiment: churn events (join/leave/fail round-robin) used
    #: to measure maintenance messages per event at each point.
    scale_churn_events: int = 60
    #: Tail experiment (``repro tail``): slow-node fractions swept under
    #: the gray-failure scenario (0.0 = the healthy baseline cell).
    tail_slow_fractions: tuple[float, ...] = (0.0, 0.1)
    #: Tail experiment: measured multi-attribute queries per cell.
    tail_queries: int = 400
    #: Tail experiment: warmup queries per cell (RTT estimators learn the
    #: healthy latency picture before the measurement window opens).
    tail_warmup: int = 40
    #: Tail experiment: latency multiplier of a gray-failing node.
    tail_slow_multiplier: float = 20.0
    #: Tail experiment: probability a message touching a slow node is
    #: actually degraded (gray failures are intermittent).
    tail_intermittency: float = 0.6
    #: Tail experiment: lognormal sigma of the base latency distribution.
    tail_sigma: float = 0.35
    #: Tail experiment: attributes per measured query.
    tail_query_attributes: int = 3
    #: Tail experiment: p99 response-time SLO (seconds) the defended
    #: policy must meet under gray failure.
    tail_slo_p99: float = 1.5
    #: Hotspot experiment (``repro hotspot``): attribute-level Zipf
    #: exponents swept (0.0 = the paper's uniform control).
    hotspot_zipf_s: tuple[float, ...] = (0.0, 1.1)
    #: Hotspot experiment: measured multi-attribute queries per cell,
    #: split evenly into :attr:`hotspot_windows` load windows.
    hotspot_queries: int = 2000
    #: Hotspot experiment: load windows per cell.  The first window is
    #: warm-up (dynamic replication needs one observed window before it
    #: can react) and is excluded from every cell's imbalance metrics.
    hotspot_windows: int = 4
    #: Hotspot experiment: attributes per measured query.
    hotspot_query_attributes: int = 2
    #: Hotspot experiment: salted roots per attribute (S).
    hotspot_salts: int = 4
    #: Hotspot experiment: dynamic-replication trigger — an attribute is
    #: hot when its window serve count exceeds this multiple of the mean
    #: per-node load.
    hotspot_trigger_ratio: float = 4.0
    #: Hotspot experiment: replicas placed per hot directory.
    hotspot_max_replicas: int = 3
    #: Hotspot experiment: consecutive cold windows before replicas decay.
    hotspot_decay_windows: int = 2
    #: Hotspot experiment: value-level Zipf exponent (0 = uniform values,
    #: the attribute-level sweep's default).
    hotspot_value_s: float = 0.0
    #: Tradeoff experiment (``repro tradeoff``): measured multi-attribute
    #: queries per overlay × budget cell.
    tradeoff_queries: int = 200
    #: Tradeoff experiment: churn events (leave/join alternating) applied
    #: before the query phase of each cell, with one budgeted maintenance
    #: round after every event.
    tradeoff_churn_events: int = 40
    #: Tradeoff experiment: ReCord per-level fan-outs swept (1 = exactly
    #: deterministic Chord, larger = closer to a full table).
    tradeoff_fanouts: tuple[int, ...] = (1, 4, 16)
    #: Tradeoff experiment: maintenance budgets swept, by registry name
    #: ("zero", "default", "unlimited").
    tradeoff_budgets: tuple[str, ...] = ("zero", "default", "unlimited")
    #: Install :class:`~repro.sim.invariants.ChurnGuard` on every built
    #: service, validating overlay invariants and directory conservation
    #: after each churn event (the runner's ``--invariants`` flag).
    validate_invariants: bool = False
    #: Attach a hop-level :class:`~repro.obs.QueryTracer` to every built
    #: service (``repro.obs``).  Off by default: the traced code paths are
    #: bypassed entirely so benchmark figures are unaffected.
    trace: bool = False

    def __post_init__(self) -> None:
        require(self.dimension >= 2, "dimension must be >= 2")
        require(self.chord_bits >= 2, "chord_bits must be >= 2")
        require(
            self.max_query_attributes <= self.num_attributes,
            "max_query_attributes cannot exceed num_attributes",
        )
        require(
            self.population <= (1 << self.chord_bits),
            f"chord_bits={self.chord_bits} cannot host {self.population} nodes",
        )
        require(self.hotspot_windows >= 2, "hotspot needs a warm-up window + one measured")
        require(
            self.hotspot_queries >= self.hotspot_windows,
            "hotspot_queries must cover every window",
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def population(self) -> int:
        """n — the node population of *every* overlay, ``d * 2**d``.

        The paper uses n = 2048 for both the Cycloid and the Chord DHTs
        ("each DHT had 2048 nodes"); at paper scale the 11-bit Chord ring
        is exactly full, at other scales the ring is sparse with the same
        population so per-node averages stay comparable.
        """
        return self.dimension * (1 << self.dimension)

    @property
    def cycloid_nodes(self) -> int:
        """Alias of :attr:`population` (Cycloid capacity ``d * 2**d``)."""
        return self.population

    @property
    def log_n(self) -> float:
        """``log2`` of the population."""
        return math.log2(self.population)

    def schema(self) -> AttributeSchema:
        """The attribute schema this configuration implies."""
        return AttributeSchema.synthetic(
            self.num_attributes, pareto_shape=self.pareto_shape
        )

    def scaled(self, **overrides) -> "ExperimentConfig":
        """A copy with some fields replaced (for ablations and tests)."""
        return replace(self, **overrides)


#: The paper's exact evaluation parameters.
PAPER_CONFIG = ExperimentConfig()

#: Same shape, laptop-smoke scale: d=5 Cycloid (160 nodes), 256-ID Chord,
#: 20 attributes × 50 providers, fewer queries.
SMOKE_CONFIG = ExperimentConfig(
    dimension=5,
    chord_bits=8,
    num_attributes=20,
    infos_per_attribute=50,
    max_query_attributes=5,
    num_requesters=20,
    queries_per_requester=5,
    num_range_queries=100,
    num_churn_requests=300,
    churn_rates=(0.1, 0.3, 0.5),
    loss_rates=(0.0, 0.05),
    availability_replications=(1, 2),
    num_availability_queries=40,
    maintenance_intervals=(2.0, 5.0),
    recovery_churn_rates=(0.0,),
    recovery_horizon=60.0,
    num_recovery_queries=8,
    scale_sizes=(2048, 8192),
    scale_queries=200,
    scale_churn_events=24,
    tail_queries=120,
    tail_warmup=24,
    hotspot_queries=480,
    tradeoff_queries=60,
    tradeoff_churn_events=16,
    tradeoff_fanouts=(1, 4, 16),
)
