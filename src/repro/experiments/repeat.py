"""Multi-seed repetition: figures with across-run dispersion.

The paper reports single-run curves; for tighter claims the harness can
repeat any figure across independent seeds and aggregate each series into
mean / min / max envelopes.  ``repro``'s benches use single runs (matching
the paper); repetition is available programmatically and through
``run_repeated``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.models import AnalysisCurve
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult
from repro.utils.validation import require

__all__ = ["RepeatedFigure", "run_repeated"]


@dataclass(frozen=True)
class RepeatedFigure:
    """Aggregation of one figure over several seeds."""

    figure_id: str
    title: str
    seeds: tuple[int, ...]
    #: series name -> (x, mean, minimum, maximum), each a tuple of floats.
    envelopes: dict[str, tuple[tuple[float, ...], ...]]

    def mean_curve(self, name: str) -> AnalysisCurve:
        """The across-seed mean of series ``name``."""
        x, mean, _, _ = self.envelopes[name]
        return AnalysisCurve(name, x, mean)

    def spread(self, name: str) -> float:
        """Largest relative (max-min)/mean spread across the series."""
        x, mean, lo, hi = self.envelopes[name]
        worst = 0.0
        for m, a, b in zip(mean, lo, hi):
            if m:
                worst = max(worst, (b - a) / abs(m))
        return worst

    def to_figure(self) -> FigureResult:
        """A FigureResult of the mean curves (renders/saves like any figure)."""
        result = FigureResult(
            figure_id=f"{self.figure_id}-mean",
            title=f"{self.title} (mean of {len(self.seeds)} seeds)",
            x_label="x",
            y_label="y",
        )
        for name in self.envelopes:
            result.add(self.mean_curve(name))
        result.notes.append(f"seeds: {list(self.seeds)}")
        return result


def run_repeated(
    runner: Callable[[ExperimentConfig], FigureResult],
    config: ExperimentConfig,
    *,
    repeats: int = 3,
    seed_stride: int = 1000,
) -> RepeatedFigure:
    """Run ``runner`` across ``repeats`` seeds and aggregate the curves.

    Seeds are ``config.seed + i * seed_stride``; every run must produce the
    same series names and x grids (they do, by construction of the figure
    modules).
    """
    require(repeats >= 1, "repeats must be >= 1")
    seeds = tuple(config.seed + i * seed_stride for i in range(repeats))
    runs: list[FigureResult] = [
        runner(config.scaled(seed=seed)) for seed in seeds
    ]

    first = runs[0]
    envelopes: dict[str, tuple[tuple[float, ...], ...]] = {}
    for curve in first.curves:
        series: list[Sequence[float]] = []
        for run in runs:
            other = run.curve(curve.name)
            require(
                other.x == curve.x,
                f"{curve.name}: x grids differ across seeds",
            )
            series.append(other.y)
        stacked = np.asarray(series, dtype=float)
        envelopes[curve.name] = (
            curve.x,
            tuple(float(v) for v in stacked.mean(axis=0)),
            tuple(float(v) for v in stacked.min(axis=0)),
            tuple(float(v) for v in stacked.max(axis=0)),
        )
    return RepeatedFigure(
        figure_id=first.figure_id,
        title=first.title,
        seeds=seeds,
        envelopes=envelopes,
    )
