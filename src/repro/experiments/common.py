"""Shared experiment plumbing: building and loading the four services.

Every figure starts from the same state — the four approaches built at the
configured scale and loaded with the identical Bounded-Pareto workload —
so construction lives here and each figure module only adds its sweep.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.baselines.maan import MaanService
from repro.baselines.mercury import MercuryService
from repro.baselines.sword import SwordService
from repro.core.lorm import LormService
from repro.experiments.config import ExperimentConfig
from repro.overlay.record import ReCordOverlay
from repro.overlay.singlehop import SingleHopRing
from repro.sim.invariants import install_churn_guards
from repro.workloads.generator import GridWorkload

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.durability import DurabilityPolicy

__all__ = [
    "OVERLAY_NAMES",
    "SYSTEM_NAMES",
    "ServiceBundle",
    "build_service",
    "build_services",
    "build_workload",
    "resolve_overlay",
    "resolve_overlays",
    "resolve_system",
    "resolve_systems",
]

#: Canonical approach names, report order — the single system registry
#: every CLI ``--system``/``--systems`` flag validates against.
SYSTEM_NAMES = ("LORM", "Mercury", "SWORD", "MAAN")

#: Overlay substrates a service can run on.  ``cycloid`` is LORM's native
#: hierarchical overlay; the ring tiers (plain Chord, D1HT-style
#: single-hop, randomized-Chord ReCord) host any of the four systems.
OVERLAY_NAMES = ("chord", "cycloid", "singlehop", "record")

_SYSTEM_CLASSES = {
    "LORM": LormService,
    "Mercury": MercuryService,
    "SWORD": SwordService,
    "MAAN": MaanService,
}


def resolve_system(name: str) -> str:
    """The canonical registry name for ``name`` (case-insensitive).

    Raises ``ValueError`` naming the valid choices — CLI entry points
    turn that into a clean exit 2 instead of a traceback.
    """
    for known in SYSTEM_NAMES:
        if known.lower() == name.lower():
            return known
    raise ValueError(
        f"unknown system {name!r}; valid choices: {', '.join(SYSTEM_NAMES)}"
    )


def resolve_systems(names) -> tuple[str, ...]:
    """Canonical, de-duplicated system names (order of first mention)."""
    return tuple(dict.fromkeys(resolve_system(name) for name in names))


def resolve_overlay(name: str) -> str:
    """The canonical overlay name for ``name`` (case-insensitive).

    Same contract as :func:`resolve_system`: raises ``ValueError`` naming
    the valid choices so CLI flags exit 2 cleanly.
    """
    for known in OVERLAY_NAMES:
        if known.lower() == name.lower():
            return known
    raise ValueError(
        f"unknown overlay {name!r}; valid choices: {', '.join(OVERLAY_NAMES)}"
    )


def resolve_overlays(names) -> tuple[str, ...]:
    """Canonical, de-duplicated overlay names (order of first mention)."""
    return tuple(dict.fromkeys(resolve_overlay(name) for name in names))


def ring_factory_for(overlay: str, *, fanout: int = 2, seed: int = 0):
    """The ring constructor for a ring-tier overlay name.

    Returns ``None`` for ``chord`` (callers fall back to the default
    :class:`~repro.overlay.chord.ChordRing` path, byte-identical to not
    specifying an overlay at all); raises for ``cycloid``, which is not a
    flat ring.
    """
    overlay = resolve_overlay(overlay)
    if overlay == "chord":
        return None
    if overlay == "singlehop":
        return SingleHopRing
    if overlay == "record":
        return functools.partial(ReCordOverlay, fanout=fanout, seed=seed)
    raise ValueError("overlay 'cycloid' is not a flat ring substrate")


@dataclass
class ServiceBundle:
    """The four approaches over one configuration, plus the workload."""

    config: ExperimentConfig
    workload: GridWorkload
    lorm: LormService
    mercury: MercuryService
    sword: SwordService
    maan: MaanService

    def all(self) -> tuple:
        """The services, LORM first (report order used throughout)."""
        return (self.lorm, self.mercury, self.sword, self.maan)

    def by_name(self, name: str):
        """Service by approach name ('LORM', 'Mercury', 'SWORD', 'MAAN')."""
        for service in self.all():
            if service.name == name:
                return service
        raise KeyError(f"unknown approach {name!r}")

    def set_collect_matches(self, flag: bool) -> None:
        """Toggle match collection on every service (accounting-only runs)."""
        for service in self.all():
            service.collect_matches = flag


def build_workload(config: ExperimentConfig) -> GridWorkload:
    """The configured Bounded-Pareto workload (m attributes × k providers)."""
    return GridWorkload(
        schema=config.schema(),
        infos_per_attribute=config.infos_per_attribute,
        seed=config.seed,
        mean_span_fraction=config.mean_span_fraction,
    )


def build_service(
    config: ExperimentConfig,
    name: str,
    *,
    workload: GridWorkload | None = None,
    register: bool = True,
    salting=None,
    overlay: str | None = None,
    fanout: int = 2,
):
    """One service at ``config`` scale, loaded with the workload.

    Cheaper than :func:`build_services` when an experiment only sweeps a
    subset of approaches (the hotspot sweep builds per-mitigation
    variants).  ``salting`` forwards a :class:`~repro.core.hotspot.
    SaltPlan` to Chord-backed services (LORM has no attribute-rooted
    single directory, so salting it is rejected).

    ``overlay`` picks the routing substrate (see :data:`OVERLAY_NAMES`).
    ``None`` keeps each system on its native substrate (Cycloid for LORM,
    Chord for the rest) with byte-identical construction to earlier
    releases; a ring-tier name runs the system on that ring (LORM
    switches to its flat linearized mode).  ``fanout`` is ReCord's
    per-level finger fan-out, ignored by the other overlays.
    """
    name = resolve_system(name)
    cls = _SYSTEM_CLASSES[name]
    if overlay is not None:
        overlay = resolve_overlay(overlay)
    if workload is None:
        workload = build_workload(config)
    schema = workload.schema
    if cls is LormService:
        if salting is not None:
            raise ValueError("key salting applies to Chord-backed services only")
        if overlay in (None, "cycloid"):
            service = LormService.build_full(
                config.dimension, schema, seed=config.seed, lph_kind=config.lph_kind
            )
        else:
            service = LormService.build_flat(
                config.dimension, schema, seed=config.seed,
                lph_kind=config.lph_kind,
                ring_factory=ring_factory_for(overlay, fanout=fanout, seed=config.seed),
                population=config.population,
            )
    else:
        if overlay == "cycloid":
            raise ValueError(
                f"overlay 'cycloid' is LORM-native; {name} runs on ring "
                "substrates only (chord, singlehop, record)"
            )
        kwargs = {"lph_kind": config.lph_kind}
        if salting is not None:
            kwargs["salting"] = salting
        if overlay is not None and overlay != "chord":
            kwargs["ring_factory"] = ring_factory_for(
                overlay, fanout=fanout, seed=config.seed
            )
        if config.population == (1 << config.chord_bits):
            service = cls.build_full(
                config.chord_bits, schema, seed=config.seed, **kwargs
            )
        else:
            service = cls.build(
                config.chord_bits, config.population, schema,
                seed=config.seed, **kwargs,
            )
    if register:
        service.register_all(workload.resource_infos(), routed=False)
    return service


def build_services(
    config: ExperimentConfig,
    *,
    register: bool = True,
    routed_registration: bool = False,
    seed_offset: int = 0,
    replication: int = 1,
    durability: "DurabilityPolicy | None" = None,
    overlay: str | None = None,
    fanout: int = 2,
) -> ServiceBundle:
    """Build all four services at ``config`` scale and load the workload.

    ``routed_registration=False`` (default) places infos at their roots
    directly — byte-identical placement without paying 400k routed inserts;
    the registration-cost benchmarks flip it on.  ``seed_offset``
    de-correlates repeated builds (used by the churn sweep).
    ``replication`` sets every overlay's per-key copy count (1 = the
    paper's model; >= 2 makes data survive crash failures, the axis swept
    by the availability experiment).  ``durability`` instead supplies a
    full :class:`~repro.sim.durability.DurabilityPolicy` (placement ×
    redundancy) to every overlay — the axis swept by the durability
    experiment; when ``None`` the overlays default to successor-list
    replication at ``replication`` copies, the seed scheme.

    With ``config.validate_invariants`` set, every service's churn entry
    points (and its overlay's ``repair_replication``) are wrapped by a
    :class:`~repro.sim.invariants.ChurnGuard`, so structural invariants
    and directory conservation are validated after every churn event —
    any violation raises
    :class:`~repro.sim.invariants.InvariantViolation` at the offending
    event instead of silently skewing the figures.

    ``overlay``/``fanout`` pick the routing substrate exactly as in
    :func:`build_service` — ``None`` keeps the native (Cycloid + Chord)
    substrates byte-identical to earlier releases.
    """
    seed = config.seed + seed_offset
    if overlay is not None:
        overlay = resolve_overlay(overlay)
    ring_factory = (
        ring_factory_for(overlay, fanout=fanout, seed=seed)
        if overlay not in (None, "cycloid")
        else None
    )
    workload = build_workload(config)
    schema = workload.schema
    if overlay in (None, "cycloid"):
        lorm = LormService.build_full(
            config.dimension, schema, seed=seed, lph_kind=config.lph_kind,
            replication=replication, durability=durability,
        )
    else:
        lorm = LormService.build_flat(
            config.dimension, schema, seed=seed, lph_kind=config.lph_kind,
            replication=replication, durability=durability,
            ring_factory=ring_factory, population=config.population,
        )

    # The paper runs every DHT with the same population ("each DHT had 2048
    # nodes"); at paper scale the 11-bit ring is exactly full, otherwise the
    # ring is sparse with population n = d * 2**d.
    def chord_service(cls):
        if overlay == "cycloid":
            raise ValueError(
                f"overlay 'cycloid' is LORM-native; {cls.name} runs on ring "
                "substrates only (chord, singlehop, record)"
            )
        extra = {"ring_factory": ring_factory} if ring_factory is not None else {}
        if config.population == (1 << config.chord_bits):
            return cls.build_full(
                config.chord_bits, schema, seed=seed, lph_kind=config.lph_kind,
                replication=replication, durability=durability, **extra,
            )
        return cls.build(
            config.chord_bits,
            config.population,
            schema,
            seed=seed,
            lph_kind=config.lph_kind,
            replication=replication,
            durability=durability,
            **extra,
        )

    mercury = chord_service(MercuryService)
    sword = chord_service(SwordService)
    maan = chord_service(MaanService)
    bundle = ServiceBundle(
        config=config,
        workload=workload,
        lorm=lorm,
        mercury=mercury,
        sword=sword,
        maan=maan,
    )
    if config.validate_invariants:
        for service in bundle.all():
            install_churn_guards(service)
    if register:
        for info in workload.resource_infos():
            for service in bundle.all():
                service.register(info, routed=routed_registration)
    if config.trace:
        # Attached *after* the bulk load so traces start with the queries.
        from repro.obs import QueryTracer

        for service in bundle.all():
            service.attach_tracer(QueryTracer())
    return bundle
