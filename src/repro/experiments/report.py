"""Figure results: structured series + CSV + text rendering.

A :class:`FigureResult` carries every curve of one paper figure (measured
and analysis-derived), knows the paper's qualitative expectation for that
figure, and renders itself as an aligned table, an ASCII chart, and a CSV
file under ``results/``.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.models import AnalysisCurve
from repro.plotting.ascii import ascii_chart
from repro.utils.formatting import render_table
from repro.utils.validation import require

__all__ = ["DistributionResult", "DistributionRow", "FigureResult"]


def _finite_or_empty(value: float) -> float | str:
    """A CSV cell: the value itself, or an empty cell for NaN/inf."""
    return value if math.isfinite(value) else ""


@dataclass
class FigureResult:
    """All series of one figure, plus labels and provenance metadata."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    curves: list[AnalysisCurve] = field(default_factory=list)
    log_y: bool = False
    #: Free-form notes (workload parameters, paper-expectation check).
    notes: list[str] = field(default_factory=list)

    def add(self, curve: AnalysisCurve) -> None:
        """Append one series."""
        self.curves.append(curve)

    def curve(self, name: str) -> AnalysisCurve:
        """The series named ``name``."""
        for c in self.curves:
            if c.name == name:
                return c
        raise KeyError(f"{self.figure_id}: no curve named {name!r}; "
                       f"have {[c.name for c in self.curves]}")

    @property
    def curve_names(self) -> list[str]:
        """All series names in insertion order."""
        return [c.name for c in self.curves]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Wide CSV: one x column, one column per series."""
        require(bool(self.curves), f"{self.figure_id}: no curves to render")
        xs = sorted({x for c in self.curves for x in c.x})
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow([self.x_label] + self.curve_names)
        lookup = [dict(zip(c.x, c.y)) for c in self.curves]
        for x in xs:
            writer.writerow(
                [x] + [table.get(x, "") for table in lookup]
            )
        return buffer.getvalue()

    def to_table(self) -> str:
        """Aligned text table of all series."""
        xs = sorted({x for c in self.curves for x in c.x})
        lookup = [dict(zip(c.x, c.y)) for c in self.curves]
        rows = [
            [x] + [table.get(x, float("nan")) for table in lookup] for x in xs
        ]
        return render_table(
            [self.x_label] + self.curve_names,
            rows,
            title=f"{self.figure_id}: {self.title}",
        )

    def to_ascii_chart(self, width: int = 64, height: int = 16) -> str:
        """ASCII chart of all series."""
        series = {c.name: (list(c.x), list(c.y)) for c in self.curves}
        return ascii_chart(
            series,
            title=f"{self.figure_id}: {self.title}",
            width=width,
            height=height,
            log_y=self.log_y,
            x_label=self.x_label,
            y_label=self.y_label,
        )

    def render(self) -> str:
        """Full text report: table, chart and notes."""
        parts = [self.to_table(), "", self.to_ascii_chart()]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def save(self, directory: str | Path) -> Path:
        """Write ``<figure_id>.csv`` and ``<figure_id>.txt`` under
        ``directory``; returns the CSV path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        csv_path = directory / f"{self.figure_id}.csv"
        csv_path.write_text(self.to_csv())
        (directory / f"{self.figure_id}.txt").write_text(self.render() + "\n")
        return csv_path

@dataclass(frozen=True)
class DistributionRow:
    """One series of a percentile figure: mean with 1st/99th percentiles."""

    name: str
    mean: float
    p01: float
    p99: float


@dataclass
class DistributionResult:
    """A percentile-bar figure (Figure 3b/c/d): per-approach mean + 1st/99th.

    The paper plots, for each approach (and its analysis derivation), the
    average directory size together with the 1st and 99th percentiles.
    """

    figure_id: str
    title: str
    value_label: str
    rows: list[DistributionRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, name: str, mean: float, p01: float, p99: float) -> None:
        """Append one series row."""
        self.rows.append(DistributionRow(name, mean, p01, p99))

    def add_summary(self, name: str, summary: "object") -> None:
        """Append a row from a :class:`~repro.sim.metrics.SummaryStats`."""
        self.add(name, summary.mean, summary.p01, summary.p99)  # type: ignore[attr-defined]

    def row(self, name: str) -> DistributionRow:
        """The row named ``name``."""
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(f"{self.figure_id}: no row named {name!r}")

    def to_csv(self) -> str:
        """CSV with columns series,mean,p01,p99.

        Non-finite statistics (an empty measured series) emit as empty
        cells rather than ``nan`` tokens, so downstream CSV/JSON
        consumers never see NaN.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["series", "mean", "p01", "p99"])
        for r in self.rows:
            writer.writerow([r.name] + [_finite_or_empty(v) for v in (r.mean, r.p01, r.p99)])
        return buffer.getvalue()

    def to_table(self) -> str:
        """Aligned text table (empty-series statistics render as ``-``)."""
        return render_table(
            ["series", f"mean {self.value_label}", "p01", "p99"],
            [
                [r.name]
                + [v if math.isfinite(v) else "-" for v in (r.mean, r.p01, r.p99)]
                for r in self.rows
            ],
            title=f"{self.figure_id}: {self.title}",
        )

    def render(self) -> str:
        """Full text report."""
        parts = [self.to_table()]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def save(self, directory: str | Path) -> Path:
        """Write CSV and text renderings; returns the CSV path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        csv_path = directory / f"{self.figure_id}.csv"
        csv_path.write_text(self.to_csv())
        (directory / f"{self.figure_id}.txt").write_text(self.render() + "\n")
        return csv_path
