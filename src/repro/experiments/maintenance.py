"""Maintenance traffic under churn (extension figure).

Figure 3(a) shows the *state* each node maintains; this experiment shows
the *traffic* that state costs: overlay maintenance messages (join/leave
repairs plus periodic stabilization) per simulated second, as the churn
rate R sweeps the paper's 0.1 … 0.5.

Mercury pays the per-ring price once per hub — every node maintains a
routing table in all m DHTs, so its structural traffic is m × a single
ring's (exactly how Theorem 4.1 accounts it).  LORM's constant-degree
Cycloid keeps both the per-event repair cost and the stabilization cost
low, which is the paper's "single DHT with constant maintenance overhead"
claim in message units.
"""

from __future__ import annotations

from repro.analysis.models import AnalysisCurve
from repro.experiments.common import build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult
from repro.sim.churn import ChurnProcess
from repro.sim.engine import Simulator
from repro.utils.seeding import SeedFactory

__all__ = ["maintenance_trial", "run_maintenance"]

#: Simulated seconds per trial and between stabilization rounds.
_DURATION = 120.0
_STABILIZE_PERIOD = 30.0


def maintenance_trial(config: ExperimentConfig, rate: float) -> dict[str, float]:
    """Maintenance messages per second per approach at churn rate ``rate``.

    Mercury's count is scaled by its hub multiplicity (see module
    docstring); SWORD/MAAN run one ring, LORM one Cycloid.
    """
    bundle = build_services(config, register=False, seed_offset=int(rate * 977))
    seeds = SeedFactory(config.seed).fork(f"maintenance:{rate}")
    out: dict[str, float] = {}
    for service in bundle.all():
        network = (
            service.overlay.network if service.name == "LORM" else service.ring.network
        )
        before = network.stats.maintenance_messages
        sim = Simulator()
        churn = ChurnProcess(rate=rate, rng=seeds.numpy(f"churn:{service.name}"))
        churn.install(
            sim, _DURATION, on_join=service.churn_join, on_leave=service.churn_leave
        )
        t = _STABILIZE_PERIOD
        while t < _DURATION:
            sim.schedule_at(t, service.stabilize, name="stabilize")
            t += _STABILIZE_PERIOD
        sim.run()
        messages = network.stats.maintenance_messages - before
        scale = service.maintenance_scale() if hasattr(service, "maintenance_scale") else 1
        out[service.name] = scale * messages / _DURATION
    return out


def run_maintenance(config: ExperimentConfig) -> FigureResult:
    """Maintenance messages/second vs churn rate R (log-scale y)."""
    rates = tuple(float(r) for r in config.churn_rates)
    trials = {rate: maintenance_trial(config, rate) for rate in rates}

    result = FigureResult(
        figure_id="maintenance",
        title="Structure-maintenance traffic under churn",
        x_label="churn rate R (events/s)",
        y_label="maintenance messages / s",
        log_y=True,
    )
    for name in ("Mercury", "MAAN", "SWORD", "LORM"):
        result.add(
            AnalysisCurve(name, rates, tuple(trials[r][name] for r in rates))
        )
    result.notes.append(
        f"Mercury scaled by its m={config.num_attributes} hubs (Theorem 4.1's "
        f"accounting); stabilization every {_STABILIZE_PERIOD:.0f}s"
    )
    return result
