"""Hotspot experiment: Zipf-skewed popularity × mitigation strategies.

The paper's workload samples query attributes uniformly (Section V), so
the per-node serve load of every system looks balanced by construction.
This sweep replays the same multi-attribute range queries under seeded
Zipf attribute popularity and measures who actually does the work —
per-node serve-load imbalance (max/mean over the whole population, Gini,
top-5 share from :mod:`repro.sim.loadstats`) — for each system and each
mitigation:

* **none** — the seed behaviour (also the result-transparency oracle);
* **salt** — ``S`` salted attribute roots, registrations written to all,
  each query reading its requester's stable root
  (:class:`~repro.core.hotspot.SaltPlan`);
* **dynamic** — load-driven directory replication charged to the
  maintenance budget (:class:`~repro.core.hotspot.DynamicReplicator`).

Mitigations apply to the attribute-rooted systems (SWORD, MAAN); LORM
and Mercury spread load by *value* hashing already and are swept
unmitigated for comparison.  All cells of one ``(system, s)`` pair run
under common random numbers — identical overlay membership, query stream
and entry nodes — so imbalance differences are pure mitigation effect.

The verdict (CI gate): at the highest swept Zipf exponent the best
mitigation must cut SWORD's serve-load max/mean ratio by at least
``REQUIRED_CUT``× versus unmitigated, every mitigated cell's answers
must be byte-identical to the unmitigated cell's (result transparency),
and no sub-query may exceed its system's structural hop ceiling.
"""

from __future__ import annotations

import csv
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.hotspot import DynamicReplicator, SaltPlan
from repro.experiments.common import SYSTEM_NAMES, build_service, resolve_systems
from repro.experiments.config import ExperimentConfig
from repro.sim.invariants import overlay_of
from repro.sim.loadstats import LoadStats, LoadWindow, max_mean_ratio
from repro.sim.maintenance import MaintenanceBudget
from repro.utils.formatting import render_table
from repro.utils.seeding import SeedFactory
from repro.workloads.generator import GridWorkload, QueryKind
from repro.workloads.popularity import ZipfPopularity

__all__ = [
    "HotspotCell",
    "HotspotResult",
    "run_hotspot",
    "MITIGATIONS",
    "MITIGATED_SYSTEMS",
    "REQUIRED_CUT",
]

#: Mitigation strategies in report order.
MITIGATIONS = ("none", "salt", "dynamic")

#: Systems with a single attribute-rooted directory to mitigate.
MITIGATED_SYSTEMS = ("SWORD", "MAAN")

#: The system the CI gate is asserted on (the melt-down victim).
HEADLINE_SYSTEM = "SWORD"

#: Required imbalance cut of the best mitigation at the headline s.
REQUIRED_CUT = 2.0


@dataclass(frozen=True)
class HotspotCell:
    """One (system, zipf-s, mitigation) measurement."""

    system: str
    zipf_s: float
    mitigation: str
    #: Serve-load max/mean ratio over the merged measured windows.
    imbalance: float
    gini: float
    top5_share: float
    #: Routing-load (intermediate hops) max/mean ratio.
    route_imbalance: float
    mean_subquery_hops: float
    max_subquery_hops: int
    hop_bound: int
    queries: int
    #: Answers byte-identical to the unmitigated cell of the same
    #: (system, s)?  True by construction for the "none" cells.
    transparent: bool
    #: Directory copies charged to maintenance (dynamic cells).
    replica_copies: int
    replicas_created: int


@dataclass
class HotspotResult:
    """The full system × zipf-s × mitigation sweep plus the gate verdict."""

    config: ExperimentConfig
    cells: list[HotspotCell] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def cell(self, system: str, zipf_s: float, mitigation: str) -> HotspotCell:
        for c in self.cells:
            if c.system == system and c.zipf_s == zipf_s and c.mitigation == mitigation:
                return c
        raise KeyError(f"no cell ({system}, {zipf_s}, {mitigation})")

    @property
    def headline_s(self) -> float:
        """The Zipf exponent the verdict is computed at (highest swept)."""
        return max(self.config.hotspot_zipf_s)

    def cut(self, system: str) -> float:
        """Unmitigated / best-mitigated imbalance at the headline s."""
        base = self.cell(system, self.headline_s, "none").imbalance
        mitigated = [
            c.imbalance
            for c in self.cells
            if c.system == system
            and c.zipf_s == self.headline_s
            and c.mitigation != "none"
        ]
        if not mitigated:
            return 1.0
        best = min(mitigated)
        if best <= 0.0:
            return float("inf") if base > 0.0 else 1.0
        return base / best

    @property
    def ok(self) -> bool:
        """The CI gate: ≥``REQUIRED_CUT``× imbalance cut on SWORD at the
        headline Zipf exponent, all answers transparent, all sub-query
        hop counts within the structural ceilings."""
        if not self.cells or self.headline_s <= 0.0:
            return False
        try:
            cut = self.cut(HEADLINE_SYSTEM)
        except KeyError:
            return False
        if cut < REQUIRED_CUT:
            return False
        if any(not c.transparent for c in self.cells):
            return False
        if any(c.max_subquery_hops > c.hop_bound for c in self.cells):
            return False
        return True

    def table(self) -> str:
        rows = []
        for c in self.cells:
            rows.append(
                [
                    c.system,
                    f"{c.zipf_s:g}",
                    c.mitigation,
                    f"{c.imbalance:.1f}",
                    f"{c.gini:.3f}",
                    f"{c.top5_share:.1%}",
                    f"{c.route_imbalance:.1f}",
                    f"{c.mean_subquery_hops:.1f}",
                    f"{c.max_subquery_hops}/{c.hop_bound}",
                    "yes" if c.transparent else "NO",
                    str(c.replica_copies),
                ]
            )
        headers = [
            "system",
            "zipf s",
            "mitigation",
            "max/mean",
            "gini",
            "top-5",
            "route max/mean",
            "hops",
            "max/bound",
            "transparent",
            "copies",
        ]
        return render_table(
            headers,
            rows,
            title="hotspot: serve-load imbalance under zipf popularity "
            "x mitigation (common random numbers)",
        )

    def render(self) -> str:
        out = self.table()
        s = self.headline_s
        if s > 0.0:
            out += "\n"
            for system in MITIGATED_SYSTEMS:
                try:
                    base = self.cell(system, s, "none")
                    cut = self.cut(system)
                except KeyError:
                    continue
                need = REQUIRED_CUT if system == HEADLINE_SYSTEM else 1.0
                verdict = "ok" if cut >= need else "MISS"
                gate = ""
                if system == HEADLINE_SYSTEM:
                    gate = f" (gate >= {REQUIRED_CUT:g}x: {verdict})"
                out += (
                    f"\n{system} @ s={s:g}: max/mean {base.imbalance:.1f} "
                    f"(none) -> best mitigated {base.imbalance / cut:.1f}, "
                    f"{cut:.1f}x cut{gate}"
                )
            out += f"\nverdict: {'ok' if self.ok else 'GATE MISS'}"
        if self.notes:
            out += "\n\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def save(self, directory) -> Path:
        """Write ``hotspot.csv`` + ``hotspot.txt`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        csv_path = directory / "hotspot.csv"
        fields = [
            "system",
            "zipf_s",
            "mitigation",
            "imbalance",
            "gini",
            "top5_share",
            "route_imbalance",
            "mean_subquery_hops",
            "max_subquery_hops",
            "hop_bound",
            "queries",
            "transparent",
            "replica_copies",
            "replicas_created",
        ]
        with csv_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(fields)
            for c in self.cells:
                writer.writerow([getattr(c, name) for name in fields])
        (directory / "hotspot.txt").write_text(self.render() + "\n")
        return csv_path


def _skewed_workload(config: ExperimentConfig, s: float) -> GridWorkload:
    """The configured workload under Zipf(s) popularity.

    Provider values are drawn before popularity applies, so every ``s``
    (and the unskewed registration workload) sees identical directories.
    """
    return GridWorkload(
        schema=config.schema(),
        infos_per_attribute=config.infos_per_attribute,
        seed=config.seed,
        mean_span_fraction=config.mean_span_fraction,
        popularity=ZipfPopularity(s=s, value_s=config.hotspot_value_s, seed=config.seed),
    )


def _entry_indices(config: ExperimentConfig, name: str, count: int, population: int):
    """``count`` seeded entry-node indices — a pure function of
    (seed, system), shared by every mitigation variant of one system."""
    rng = SeedFactory(config.seed).numpy(f"hotspot-entries:{name}")
    return [int(i) for i in rng.integers(0, population, size=count)]


def _entry_nodes(service, indices) -> list:
    """The entry nodes of ``service``'s *own* overlay at ``indices``.

    Variants of one system share membership (same build seed) but not
    node objects; resolving per service keeps lookups — and directory
    reads — inside the right overlay.
    """
    overlay = overlay_of(service)
    ids = overlay.node_ids
    return [overlay.node(ids[i]) for i in indices]


def _measure_cell(
    service,
    mitigation: str,
    zipf_s: float,
    queries,
    starts,
    config: ExperimentConfig,
    replicator: DynamicReplicator | None = None,
):
    """Run one cell; returns ``(cell_without_transparency, answers)``.

    The caller fills in ``transparent`` by comparing ``answers`` against
    the unmitigated cell's.  The first window is warm-up for every
    mitigation alike (dynamic replication cannot act before it has
    observed one window; the others just discard it) so imbalance
    numbers are computed over identical query ranges.
    """
    stats = LoadStats()
    service.attach_load_stats(stats)
    budget = MaintenanceBudget(
        stabilize_nodes=0,
        refresh_nodes=0,
        repair_keys=config.infos_per_attribute * config.hotspot_max_replicas,
    )
    population = service.num_nodes()
    per_window = len(queries) // config.hotspot_windows
    answers = []
    measured = LoadWindow()
    copies_before = replicator.copies_sent if replicator is not None else 0
    created_before = replicator.replicas_created if replicator is not None else 0
    max_hops = 0
    total_hops = 0
    sub_count = 0
    try:
        for w in range(config.hotspot_windows):
            chunk = queries[w * per_window : (w + 1) * per_window]
            for j, q in enumerate(chunk):
                result = service.multi_query(q, starts[w * per_window + j])
                answers.append(result.providers)
                for sub in result.sub_results:
                    max_hops = max(max_hops, sub.hops)
                    total_hops += sub.hops
                    sub_count += 1
            window = stats.take_window()
            if w > 0:
                measured = measured.merged(window)
            if replicator is not None:
                replicator.observe(window, population)
                replicator.tick(budget)
    finally:
        service.attach_load_stats(None)
    replica_copies = 0
    replicas_created = 0
    if replicator is not None:
        replica_copies = replicator.copies_sent - copies_before
        replicas_created = replicator.replicas_created - created_before
    cell = HotspotCell(
        system=service.name,
        zipf_s=zipf_s,
        mitigation=mitigation,
        imbalance=measured.max_mean_ratio(population),
        gini=measured.gini(population),
        top5_share=measured.top_share(5),
        route_imbalance=max_mean_ratio(measured.routes, population),
        mean_subquery_hops=total_hops / sub_count if sub_count else 0.0,
        max_subquery_hops=max_hops,
        hop_bound=service.subquery_hop_bound(),
        queries=len(answers),
        transparent=True,
        replica_copies=replica_copies,
        replicas_created=replicas_created,
    )
    return cell, answers


def run_hotspot(config: ExperimentConfig, systems=None) -> HotspotResult:
    """Sweep system × zipf-s × mitigation under common random numbers.

    Per system one base service is built (shared by the "none" and
    "dynamic" cells — the replicator is cleared between cells, restoring
    the unmitigated directories) plus one salted service for the "salt"
    cells; all variants share overlay membership, query streams and
    entry nodes, so imbalance deltas are pure mitigation effect.
    """
    names = resolve_systems(systems) if systems else SYSTEM_NAMES
    result = HotspotResult(config=config)
    salt_plan = SaltPlan(salts=config.hotspot_salts)
    total = (config.hotspot_queries // config.hotspot_windows) * config.hotspot_windows
    for name in names:
        base = build_service(config, name)
        indices = _entry_indices(config, name, total, base.num_nodes())
        starts = _entry_nodes(base, indices)
        salted = None
        salted_starts = None
        if name in MITIGATED_SYSTEMS:
            salted = build_service(config, name, salting=salt_plan)
            salted_starts = _entry_nodes(salted, indices)
        for s in sorted(config.hotspot_zipf_s):
            workload = _skewed_workload(config, s)
            queries = list(
                workload.query_stream(
                    total,
                    config.hotspot_query_attributes,
                    QueryKind.RANGE,
                    label=f"hotspot:{s:g}",
                )
            )
            cell, reference = _measure_cell(base, "none", s, queries, starts, config)
            result.cells.append(cell)
            if salted is None:
                continue
            cell, answers = _measure_cell(salted, "salt", s, queries, salted_starts, config)
            result.cells.append(_with_transparency(cell, answers == reference))
            replicator = DynamicReplicator(
                base,
                _directory_namespace(base),
                trigger_ratio=config.hotspot_trigger_ratio,
                max_replicas=config.hotspot_max_replicas,
                decay_windows=config.hotspot_decay_windows,
            )
            base.attach_hot_replicator(replicator)
            try:
                cell, answers = _measure_cell(
                    base,
                    "dynamic",
                    s,
                    queries,
                    starts,
                    config,
                    replicator=replicator,
                )
            finally:
                base.attach_hot_replicator(None)
            result.cells.append(_with_transparency(cell, answers == reference))
    result.notes.append(
        f"{total} range queries/cell over {config.hotspot_windows} windows "
        f"(first = warm-up, excluded from imbalance); "
        f"{config.hotspot_query_attributes} attributes/query; "
        f"salting S={config.hotspot_salts}; dynamic trigger "
        f"{config.hotspot_trigger_ratio:g}x mean, {config.hotspot_max_replicas} "
        f"replicas, decay after {config.hotspot_decay_windows} cold windows."
    )
    result.notes.append(
        "LORM and Mercury spread directories by value hashing and run "
        "unmitigated; mitigations target the attribute-rooted SWORD/MAAN "
        "directories."
    )
    return result


def _with_transparency(cell: HotspotCell, transparent: bool) -> HotspotCell:
    return dataclasses.replace(cell, transparent=transparent)


def _directory_namespace(service) -> str:
    """The namespace of the service's attribute-rooted directory."""
    if service.name == "SWORD":
        return "sword"
    if service.name == "MAAN":
        return "maan:attr"
    raise ValueError(f"{service.name} has no attribute-rooted directory")
