"""Tail-latency experiment: gray failures × requester policies.

The loss experiments ask *whether* queries survive faults; this one asks
how long they take when nodes fail *slow* instead of failing stop.  Every
cell attaches a lognormal per-message latency model (median = the seed's
``hop_latency``) and marks a fraction of nodes gray-failing — their
messages take ``tail_slow_multiplier``× longer with probability
``tail_intermittency`` — then measures the response-time distribution of
multi-attribute range queries under three requester policies:

* **fixed** — the seed behaviour: a constant retransmission timeout;
* **adaptive** — RTT-estimator timeouts (EWMA + p95 window, Jacobson/
  Karels style), so retransmission rounds stop paying the worst-case wait;
* **hedged** — adaptive timeouts plus a backup request fired at the
  observed p95, first response wins ("the tail at scale" defense —
  effective precisely because gray failures are intermittent).

The headline acceptance check: at the highest swept slow-node fraction the
hedged policy must cut p99 response time at least 2× versus the fixed
policy on LORM and SWORD, meet the p99 SLO, and keep its hedge overhead
(extra messages) bounded.  All three policies are *result-transparent* —
owners, matches and completeness are identical; only time differs — which
the property suite verifies independently.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import ExperimentConfig
from repro.sim.chaos import slow_victims
from repro.sim.faults import (
    ADAPTIVE_POLICY,
    DEFAULT_POLICY,
    HEDGED_POLICY,
    FaultInjector,
    FaultPlan,
)
from repro.sim.invariants import overlay_of
from repro.sim.latency import LognormalLatency
from repro.utils.formatting import render_table
from repro.utils.seeding import SeedFactory
from repro.workloads.generator import QueryKind

__all__ = ["TailCell", "TailResult", "run_tail", "POLICIES", "HEADLINE_SYSTEMS"]

#: The requester policies swept, in report order.
POLICIES = (
    ("fixed", DEFAULT_POLICY),
    ("adaptive", ADAPTIVE_POLICY),
    ("hedged", HEDGED_POLICY),
)

#: Systems the ≥2× p99 headline is asserted on (ISSUE 8 acceptance).
HEADLINE_SYSTEMS = ("LORM", "SWORD")

#: Maximum tolerated hedge overhead: hedged (backup) messages as a
#: fraction of all messages in the measurement window.
MAX_HEDGE_OVERHEAD = 0.25

#: Required p99 improvement of hedged over fixed at the headline fraction.
HEADLINE_SPEEDUP = 2.0


@dataclass(frozen=True)
class TailCell:
    """One (system, slow fraction, policy) measurement."""

    system: str
    slow_fraction: float
    policy: str
    p50: float
    p99: float
    p999: float
    mean: float
    #: Measured queries in the cell.
    queries: int
    #: Message-stat deltas over the measurement window.
    messages: int
    timeouts: int
    retries: int
    hedges: int
    hedges_won: int

    @property
    def hedge_overhead(self) -> float:
        """Backup messages as a fraction of all messages in the window."""
        if self.messages <= 0:
            return 0.0
        return self.hedges / self.messages


@dataclass
class TailResult:
    """The full system × fraction × policy sweep plus the SLO verdict."""

    config: ExperimentConfig
    cells: list[TailCell] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def cell(self, system: str, fraction: float, policy: str) -> TailCell:
        for c in self.cells:
            if (
                c.system == system
                and c.slow_fraction == fraction
                and c.policy == policy
            ):
                return c
        raise KeyError(f"no cell ({system}, {fraction}, {policy})")

    @property
    def headline_fraction(self) -> float:
        """The slow-node fraction the verdict is computed at (the highest
        non-zero fraction swept)."""
        fractions = [f for f in self.config.tail_slow_fractions if f > 0.0]
        return max(fractions) if fractions else 0.0

    def speedup(self, system: str) -> float:
        """p99(fixed) / p99(hedged) at the headline fraction."""
        fraction = self.headline_fraction
        fixed = self.cell(system, fraction, "fixed").p99
        hedged = self.cell(system, fraction, "hedged").p99
        if hedged <= 0.0:
            return float("inf") if fixed > 0.0 else 1.0
        return fixed / hedged

    @property
    def ok(self) -> bool:
        """The ISSUE 8 headline: ≥2× p99 cut on LORM and SWORD under the
        gray-failure fraction, hedged p99 within the SLO, hedge overhead
        bounded."""
        if not self.cells or self.headline_fraction <= 0.0:
            return False
        for system in HEADLINE_SYSTEMS:
            try:
                hedged = self.cell(system, self.headline_fraction, "hedged")
            except KeyError:
                return False
            if self.speedup(system) < HEADLINE_SPEEDUP:
                return False
            if hedged.p99 > self.config.tail_slo_p99:
                return False
        if any(
            c.hedge_overhead > MAX_HEDGE_OVERHEAD
            for c in self.cells
            if c.policy == "hedged"
        ):
            return False
        return True

    def table(self) -> str:
        rows = []
        for c in self.cells:
            rows.append([
                c.system,
                f"{c.slow_fraction:.0%}",
                c.policy,
                f"{c.p50 * 1000:.0f}",
                f"{c.p99 * 1000:.0f}",
                f"{c.p999 * 1000:.0f}",
                f"{c.mean * 1000:.0f}",
                str(c.timeouts),
                str(c.hedges),
                str(c.hedges_won),
                f"{c.hedge_overhead:.1%}",
            ])
        return render_table(
            ["system", "slow", "policy", "p50 ms", "p99 ms", "p99.9 ms",
             "mean ms", "timeouts", "hedges", "won", "hedge ovh"],
            rows,
            title="tail latency: gray failures x requester policies "
            "(lognormal per-message latency)",
        )

    def render(self) -> str:
        out = self.table()
        fraction = self.headline_fraction
        if fraction > 0.0:
            out += "\n"
            for system in HEADLINE_SYSTEMS:
                try:
                    speedup = self.speedup(system)
                    hedged = self.cell(system, fraction, "hedged")
                except KeyError:
                    continue
                verdict = (
                    "ok"
                    if speedup >= HEADLINE_SPEEDUP
                    and hedged.p99 <= self.config.tail_slo_p99
                    else "MISS"
                )
                out += (
                    f"\n{system} @ {fraction:.0%} slow: p99 "
                    f"{self.cell(system, fraction, 'fixed').p99 * 1000:.0f} ms "
                    f"(fixed) -> {hedged.p99 * 1000:.0f} ms (hedged), "
                    f"{speedup:.1f}x, SLO {self.config.tail_slo_p99 * 1000:.0f} "
                    f"ms: {verdict}"
                )
            out += f"\nverdict: {'ok' if self.ok else 'SLO MISS'}"
        if self.notes:
            out += "\n\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def save(self, directory) -> Path:
        """Write ``tail.csv`` + ``tail.txt`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        csv_path = directory / "tail.csv"
        fields = [
            "system", "slow_fraction", "policy", "p50", "p99", "p999",
            "mean", "queries", "messages", "timeouts", "retries", "hedges",
            "hedges_won",
        ]
        with csv_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(fields)
            for c in self.cells:
                writer.writerow([getattr(c, name) for name in fields])
        (directory / "tail.txt").write_text(self.render() + "\n")
        return csv_path


def _measure_cell(
    service,
    queries,
    starts,
    config: ExperimentConfig,
    fraction: float,
    policy_name: str,
    policy,
) -> TailCell:
    """Run one (system, fraction, policy) cell on a shared bundle.

    The cell attaches its own seeded latency model and gray-failure
    injector, warms the RTT estimators on ``tail_warmup`` queries, then
    measures the rest.  Queries never mutate the overlay, so cells can
    share one bundle; faults and the latency model are detached on exit.
    """
    net = overlay_of(service).network
    # One latency seed per (system, fraction): policies face the same
    # base-latency randomness, so differences are pure policy effect
    # (common-random-numbers variance reduction).
    cell_seed = SeedFactory(config.seed).child_seed(
        f"tail:{service.name}:{fraction:g}"
    ) % (2**31)
    model = LognormalLatency(
        median=net.hop_latency, sigma=config.tail_sigma, seed=cell_seed
    )
    injector = FaultInjector(FaultPlan(seed=cell_seed))
    if fraction > 0.0:
        for victim in slow_victims(overlay_of(service), fraction):
            injector.mark_slow(
                victim, config.tail_slow_multiplier, config.tail_intermittency
            )
    service.configure_faults(injector, policy)
    service.configure_latency(model)
    try:
        for q, start in zip(queries[: config.tail_warmup],
                            starts[: config.tail_warmup]):
            service.multi_query(q, start)
        before = net.stats.snapshot()
        samples = []
        for q, start in zip(queries[config.tail_warmup:],
                            starts[config.tail_warmup:]):
            samples.append(service.multi_query(q, start).latency)
        delta = net.stats.delta_since(before)
    finally:
        service.configure_latency(None)
        service.configure_faults(None, DEFAULT_POLICY)
    data = np.asarray(samples)
    return TailCell(
        system=service.name,
        slow_fraction=fraction,
        policy=policy_name,
        p50=float(np.percentile(data, 50)),
        p99=float(np.percentile(data, 99)),
        p999=float(np.percentile(data, 99.9)),
        mean=float(data.mean()),
        queries=len(samples),
        messages=delta.messages,
        timeouts=delta.timeouts,
        retries=delta.retries,
        hedges=delta.hedges,
        hedges_won=delta.hedges_won,
    )


def run_tail(
    config: ExperimentConfig, bundle: ServiceBundle | None = None
) -> TailResult:
    """Sweep system × slow-node fraction × requester policy.

    One shared bundle (queries don't mutate the overlays); per cell a
    fresh seeded lognormal latency model and gray-failure injector.  Every
    cell of one system replays the identical ``(query, entry-node)``
    pairs, so policies are compared on exactly the same work.
    """
    bundle = bundle if bundle is not None else build_services(config)
    bundle.set_collect_matches(False)
    total = config.tail_warmup + config.tail_queries
    queries = list(
        bundle.workload.query_stream(
            total, config.tail_query_attributes, QueryKind.RANGE, label="tail"
        )
    )
    result = TailResult(config=config)
    for service in bundle.all():
        # Fixed entry nodes per system: every cell replays the same pairs.
        starts = [service.random_node() for _ in range(total)]
        for fraction in config.tail_slow_fractions:
            for policy_name, policy in POLICIES:
                result.cells.append(_measure_cell(
                    service, queries, starts, config,
                    fraction, policy_name, policy,
                ))
    bundle.set_collect_matches(True)
    result.notes.append(
        f"lognormal latency, median {bundle.lorm.overlay.network.hop_latency * 1000:.0f} "
        f"ms/hop, sigma {config.tail_sigma:g}; gray nodes x{config.tail_slow_multiplier:g} "
        f"with intermittency {config.tail_intermittency:g}; "
        f"{config.tail_queries} measured queries/cell after {config.tail_warmup} warmup."
    )
    result.notes.append(
        "policies are result-transparent (same owners/matches/completeness; "
        "verified by the property suite) — only response time and "
        "hedge/timeout accounting differ."
    )
    return result
