"""Figure 3 — maintenance overhead in the four approaches.

* 3(a): outlinks maintained per node versus network size — Mercury,
  "Analysis>LORM" (Mercury's measured curve divided by m, Theorem 4.1), and
  LORM.
* 3(b): directory-size mean and 1st/99th percentiles — MAAN vs LORM, with
  analysis rows derived from MAAN's measurements via Theorems 4.2/4.3.
* 3(c): SWORD vs LORM (Theorems 4.2/4.4).
* 3(d): Mercury vs LORM (Theorems 4.2/4.5).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis import theorems
from repro.analysis.models import AnalysisCurve, derive_curve
from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import DistributionResult, FigureResult
from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidOverlay
from repro.sim.metrics import summarize
from repro.utils.seeding import SeedFactory

__all__ = ["run_fig3a", "run_fig3b", "run_fig3c", "run_fig3d"]


def run_fig3a(config: ExperimentConfig) -> FigureResult:
    """Outlinks per node vs network size (Figure 3(a)).

    Sweeps Cycloid dimensions from ``config.fig3a_dimensions``; for each,
    the Chord/Mercury comparison point uses the same population placed on a
    ``ceil(log2 n)``-bit ring.  Mercury's per-node outlinks are the per-hub
    routing table times the m hubs each node participates in.
    """
    m = config.num_attributes
    seeds = SeedFactory(config.seed).fork("fig3a")
    xs: list[float] = []
    mercury_y: list[float] = []
    lorm_y: list[float] = []
    for d in config.fig3a_dimensions:
        n = d * (1 << d)
        xs.append(float(n))

        overlay = CycloidOverlay(d)
        overlay.build_full()
        lorm_y.append(float(np.mean(overlay.outlink_counts())))

        bits = max(2, math.ceil(math.log2(n)))
        ring = ChordRing(bits)
        if n >= (1 << bits):
            ring.build_full()
        else:
            rng = seeds.numpy(f"chord-members:{d}")
            ids = rng.choice(1 << bits, size=n, replace=False)
            ring.build(int(i) for i in ids)
        per_hub = float(np.mean(ring.outlink_counts()))
        mercury_y.append(m * per_hub)

    mercury = AnalysisCurve("Mercury", tuple(xs), tuple(mercury_y))
    result = FigureResult(
        figure_id="fig3a",
        title="Outlinks per node vs network size",
        x_label="network size (nodes)",
        y_label="outlinks per node",
        log_y=True,
    )
    result.add(mercury)
    result.add(derive_curve("Analysis>LORM", mercury, divide_by=float(m)))
    result.add(AnalysisCurve("LORM", tuple(xs), tuple(lorm_y)))
    result.notes.append(
        f"m={m} attribute hubs; LORM keeps a constant-degree (<=7) table "
        f"(Theorem 4.1: LORM saves >= m times Mercury's structure overhead)"
    )
    return result


def _directory_summaries(bundle: ServiceBundle) -> dict[str, object]:
    return {
        service.name: summarize(service.directory_sizes())
        for service in bundle.all()
    }


def run_fig3b(
    config: ExperimentConfig, bundle: ServiceBundle | None = None
) -> DistributionResult:
    """Directory sizes: MAAN vs LORM (Figure 3(b))."""
    bundle = bundle if bundle is not None else build_services(config)
    stats = _directory_summaries(bundle)
    n, m, d = config.population, config.num_attributes, config.dimension
    pct_factor = theorems.thm43_directory_reduction_vs_maan(n, m, d)
    avg_factor = theorems.thm42_total_info_ratio_maan()

    result = DistributionResult(
        figure_id="fig3b",
        title="Directory size per node: MAAN vs LORM",
        value_label="pieces",
    )
    result.add_summary("MAAN", stats["MAAN"])
    result.add_summary("LORM", stats["LORM"])
    maan = stats["MAAN"]
    result.add(
        "Analysis-LORM",
        maan.mean / avg_factor,  # Theorem 4.2: averages differ by 2x
        maan.p01 / pct_factor,  # Theorem 4.3: percentiles by d(1+m/n)
        maan.p99 / pct_factor,
    )
    result.notes.append(
        f"analysis: avg = MAAN/2 (Thm 4.2); percentiles = MAAN/{pct_factor:.2f} "
        f"= d(1+m/n) (Thm 4.3)"
    )
    return result


def run_fig3c(
    config: ExperimentConfig, bundle: ServiceBundle | None = None
) -> DistributionResult:
    """Directory sizes: SWORD vs LORM (Figure 3(c))."""
    bundle = bundle if bundle is not None else build_services(config)
    stats = _directory_summaries(bundle)
    d = config.dimension

    result = DistributionResult(
        figure_id="fig3c",
        title="Directory size per node: SWORD vs LORM",
        value_label="pieces",
    )
    result.add_summary("SWORD", stats["SWORD"])
    result.add_summary("LORM", stats["LORM"])
    sword = stats["SWORD"]
    result.add(
        "Analysis-LORM",
        sword.mean,  # Theorem 4.2: same total info, same average
        sword.p01 / theorems.thm44_directory_reduction_vs_sword(d),
        sword.p99 / theorems.thm44_directory_reduction_vs_sword(d),
    )
    result.notes.append(
        f"analysis: avg = SWORD (Thm 4.2); percentiles = SWORD/d = SWORD/{d} (Thm 4.4)"
    )
    return result


def run_fig3d(
    config: ExperimentConfig, bundle: ServiceBundle | None = None
) -> DistributionResult:
    """Directory sizes: Mercury vs LORM (Figure 3(d))."""
    bundle = bundle if bundle is not None else build_services(config)
    stats = _directory_summaries(bundle)
    n, m, d = config.population, config.num_attributes, config.dimension
    balance = theorems.thm45_balance_ratio_mercury_vs_lorm(n, m, d)

    result = DistributionResult(
        figure_id="fig3d",
        title="Directory size per node: Mercury vs LORM",
        value_label="pieces",
    )
    result.add_summary("Mercury", stats["Mercury"])
    result.add_summary("LORM", stats["LORM"])
    mercury = stats["Mercury"]
    # Theorem 4.5: Mercury is n/(dm) times more balanced, so the analysis
    # prediction for LORM widens Mercury's percentile band by that factor
    # (p01 scaled down, p99 scaled up) around the equal average (Thm 4.2).
    result.add(
        "Analysis-LORM",
        mercury.mean,
        mercury.p01 / balance,
        mercury.p99 * balance,
    )
    result.notes.append(
        f"analysis: avg = Mercury (Thm 4.2); percentile band widened by "
        f"n/(dm) = {balance:.2f} (Thm 4.5)"
    )
    return result
