"""Recovery experiment: chaos timelines × budgeted maintenance.

The availability experiment measures a static fault level; here the
faults have a *timeline* — a partition that heals, a correlated crash
burst, a flapping node — and maintenance has a *cost*: each periodic
round spends a bounded :class:`~repro.sim.maintenance.MaintenanceBudget`
instead of the seed's free global sweeps.  Two entry points:

* :func:`run_chaos_demo` — the acceptance scenario.  All four systems
  live through the same seeded :data:`~repro.sim.chaos.DEMO_SCENARIO`
  twice: once under the default budget (every fault must heal — finite
  time-to-reconverge) and once under ``budget=0`` (the crash burst's
  replica deficit must *persist*, proving the harness detects
  non-recovery rather than assuming it).
* :func:`run_recovery` — the sweep figure: time-to-reconverge as a
  function of the maintenance-round interval, per approach × background
  churn rate R.

Everything is seeded; the same configuration renders byte-identical
reports on every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.models import AnalysisCurve
from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult
from repro.sim.chaos import DEMO_SCENARIO, ChaosScenario
from repro.sim.churn import ChurnProcess
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.maintenance import (
    DEFAULT_BUDGET,
    ZERO_BUDGET,
    MaintenanceBudget,
    MaintenanceScheduler,
)
from repro.sim.network import publish_stats
from repro.sim.recovery import RecoveryTracker
from repro.utils.formatting import render_table
from repro.utils.seeding import SeedFactory
from repro.workloads.generator import QueryKind

__all__ = ["run_chaos_demo", "run_recovery", "ChaosDemoResult", "chaos_trial"]


def _probe_cases(bundle: ServiceBundle, count: int) -> list[tuple]:
    """``(query, truth)`` probe pairs shared by every sample and system."""
    attrs = min(2, bundle.config.num_attributes)
    n_range = count // 2
    queries = list(
        bundle.workload.query_stream(
            count - n_range, attrs, QueryKind.POINT, label="recovery-point"
        )
    ) + list(
        bundle.workload.query_stream(
            n_range, attrs, QueryKind.RANGE, label="recovery-range"
        )
    )
    return [
        (query, bundle.workload.matching_providers_bruteforce(query))
        for query in queries
    ]


def _availability_probe(service, cases: list[tuple]):
    """A probe closure: exact-answer fraction under the *current* faults.

    Unlike ``measure_completeness`` this does not attach or detach the
    injector — the chaos timeline owns the injector for the whole run and
    the probe must see whatever is armed right now.
    """
    def probe() -> float:
        if not cases:
            return 1.0
        exact = sum(
            1 for query, truth in cases
            if service.multi_query(query).providers == truth
        )
        return exact / len(cases)

    return probe


def chaos_trial(
    service,
    cases: list[tuple],
    scenario: ChaosScenario,
    *,
    budget: MaintenanceBudget = DEFAULT_BUDGET,
    interval: float = 2.0,
    horizon: float = 40.0,
    sample_interval: float = 2.0,
    churn_rate: float = 0.0,
    churn_seed: int = 0,
    injector_seed: int = 0,
    availability_floor: float = 1.0,
    scheduler: MaintenanceScheduler | None = None,
) -> RecoveryTracker:
    """Run one service through ``scenario`` under budgeted maintenance.

    Event order at equal timestamps is fixed by installation order —
    chaos events, then background churn, then maintenance rounds, then
    health samples — so a maintenance round scheduled at a fault instant
    sees the damage and the sample after it sees the round's effect.
    Returns the populated :class:`RecoveryTracker`.

    ``availability_floor`` is forwarded to the tracker: 1.0 (default)
    demands exact availability to count as recovered; 0.0 tracks *data*
    recovery alone (structure + replica deficit) — what the durability
    experiment uses, since a policy that genuinely lost pieces can still
    heal its redundancy.  A caller-supplied ``scheduler`` (budget and
    interval pre-bound; this function installs it) lets the caller read
    ``scheduler.reports`` afterwards — the per-round repair accounting
    behind the durability experiment's bandwidth column.
    """
    sim = Simulator()
    injector = FaultInjector(FaultPlan(seed=injector_seed))
    service.configure_faults(injector)
    tracker = RecoveryTracker(
        service,
        _availability_probe(service, cases),
        maintenance_round=service.maintenance_round(),
        availability_floor=availability_floor,
    )
    for onset in scenario.fault_times():
        tracker.note_fault(onset)
    try:
        scenario.install(sim, injector, service)
        if churn_rate > 0.0:
            process = ChurnProcess(
                churn_rate, SeedFactory(churn_seed).numpy("recovery-churn")
            )
            process.install(sim, horizon, service.churn_join, service.churn_leave)
        if scheduler is None:
            scheduler = MaintenanceScheduler(service, budget, interval)
        scheduler.install(sim, horizon)
        tracker.install(sim, horizon, sample_interval)
        sim.run_until(horizon)
    finally:
        service.configure_faults(None)
    return tracker


def _fmt_time(t: float) -> str:
    return "never" if math.isinf(t) else f"{t:.1f}s"


@dataclass
class ChaosDemoResult:
    """The acceptance-demo outcome: budgeted vs. zero-budget recovery."""

    figure: FigureResult
    #: service name -> tracker, under the default budget.
    budgeted: dict = field(default_factory=dict)
    #: service name -> tracker, under ZERO_BUDGET.
    unbudgeted: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The demo's contract: every system heals under the default
        budget, *no* system heals with maintenance disabled, and every
        system's availability visibly dipped during the faults."""
        if not self.budgeted or not self.unbudgeted:
            return False
        healed = all(t.reconverged for t in self.budgeted.values())
        stuck = all(not t.reconverged for t in self.unbudgeted.values())
        dipped = all(
            min(a for _, a in t.availability_timeline()) < 1.0
            for t in self.budgeted.values()
        )
        return healed and stuck and dipped

    def slo_table(self) -> str:
        """Per-system recovery SLO summary (both budget regimes)."""
        rows = []
        for name, tracker in self.budgeted.items():
            zero = self.unbudgeted[name]
            rows.append([
                name,
                _fmt_time(tracker.time_to_reconverge()),
                f"{tracker.deficit_area():.0f}",
                "yes" if tracker.reconverged else "NO",
                _fmt_time(zero.time_to_reconverge()),
                f"{zero.deficit_area():.0f}",
                "yes" if zero.reconverged else "NO",
            ])
        return render_table(
            ["system", "TTR", "deficit area", "reconverged",
             "TTR (budget=0)", "deficit area (b=0)", "reconverged (b=0)"],
            rows,
            title="chaos: recovery SLOs, default budget vs maintenance disabled",
        )

    def render(self) -> str:
        """Full text report: SLO table + availability timelines + notes."""
        return self.slo_table() + "\n\n" + self.figure.render()

    def save(self, directory) -> Path:
        """Persist alongside the figure's CSV/text output."""
        path = self.figure.save(directory)
        (Path(directory) / "chaos_slo.txt").write_text(self.render() + "\n")
        return path


def run_chaos_demo(
    config: ExperimentConfig,
    scenario: ChaosScenario = DEMO_SCENARIO,
) -> ChaosDemoResult:
    """The seeded acceptance demo over all four systems.

    One bundle per budget regime (identical seeds, so the two runs differ
    *only* in maintenance), the same scenario installed on every service.
    """
    interval = min(config.maintenance_intervals)
    horizon = max(config.recovery_horizon, scenario.horizon() + 4 * interval)
    figure = FigureResult(
        figure_id="chaos",
        title=f"Lookup availability timeline under chaos ({scenario.name})",
        x_label="Simulated time (s)",
        y_label="Fraction of probe queries answered exactly",
    )
    result = ChaosDemoResult(figure=figure)
    for budget, into in ((DEFAULT_BUDGET, result.budgeted),
                         (ZERO_BUDGET, result.unbudgeted)):
        bundle = build_services(
            config, register=True, replication=config.recovery_replication
        )
        cases = _probe_cases(bundle, config.num_recovery_queries)
        for service in bundle.all():
            tracker = chaos_trial(
                service, cases, scenario,
                budget=budget,
                interval=interval,
                horizon=horizon,
                sample_interval=config.recovery_sample_interval,
                injector_seed=config.seed,
            )
            into[service.name] = tracker
            # Surface the requester-side fault accounting (satellite:
            # retries/timeouts otherwise stay trapped in MessageStats).
            publish_stats(
                tracker.overlay.network.stats, service.metrics, prefix="faults"
            )
            if budget is DEFAULT_BUDGET:
                timeline = tracker.availability_timeline()
                figure.add(AnalysisCurve(
                    name=service.name,
                    x=tuple(t for t, _ in timeline),
                    y=tuple(a for _, a in timeline),
                ))
    fault_times = ", ".join(f"{t:g}s" for t in scenario.fault_times())
    figure.notes.append(
        f"scenario {scenario.name!r}: fault onsets at {fault_times}; "
        f"replication={config.recovery_replication}, maintenance every "
        f"{interval:g}s at the default budget, horizon {horizon:g}s."
    )
    figure.notes.append(
        "Recovery = structural invariants clean, replica deficit zero and "
        "probe availability back to 1.0.  The budget=0 control run must "
        "NOT reconverge (the crash burst's replica deficit persists), "
        "proving non-recovery is detectable, not assumed."
    )
    return result


def run_recovery(config: ExperimentConfig) -> FigureResult:
    """Time-to-reconverge vs. maintenance interval, per approach × churn R.

    Background churn runs *on top of* the chaos timeline; the recovery
    clock still keys off the scenario's declared fault onsets.
    """
    seeds = SeedFactory(config.seed).fork("recovery")
    scenario = DEMO_SCENARIO
    result = FigureResult(
        figure_id="recovery",
        title="Time to reconverge vs maintenance interval (chaos timeline)",
        x_label="Maintenance round interval (s)",
        y_label="Time to reconverge (s; horizon+ = never)",
    )
    horizon = max(
        config.recovery_horizon,
        scenario.horizon() + 4 * max(config.maintenance_intervals),
    )
    #: Plot-able stand-in for "never recovered within the horizon".
    never = float(2 * horizon)
    stuck_cells = []
    for churn_rate in config.recovery_churn_rates:
        ttr_by_service: dict[str, list[float]] = {}
        for interval in config.maintenance_intervals:
            bundle = build_services(
                config, register=True,
                replication=config.recovery_replication,
                seed_offset=int(churn_rate * 100),
            )
            cases = _probe_cases(bundle, config.num_recovery_queries)
            for service in bundle.all():
                tracker = chaos_trial(
                    service, cases, scenario,
                    budget=DEFAULT_BUDGET,
                    interval=interval,
                    horizon=horizon,
                    sample_interval=config.recovery_sample_interval,
                    churn_rate=churn_rate,
                    churn_seed=seeds.child_seed(
                        f"{service.name}:R{churn_rate}:i{interval}"
                    ),
                    injector_seed=config.seed,
                )
                ttr = tracker.time_to_reconverge()
                if math.isinf(ttr):
                    stuck_cells.append(
                        f"{service.name} R={churn_rate:g} interval={interval:g}s"
                    )
                    ttr = never
                ttr_by_service.setdefault(service.name, []).append(ttr)
        for name, ttrs in ttr_by_service.items():
            result.add(AnalysisCurve(
                name=f"{name} R={churn_rate:g}",
                x=tuple(config.maintenance_intervals),
                y=tuple(ttrs),
            ))
    result.notes.append(
        f"Chaos scenario {scenario.name!r} under default per-round budgets; "
        f"replication={config.recovery_replication}; horizon {horizon:g}s; "
        f"cells that never reconverged are plotted at {never:g}s."
    )
    if stuck_cells:
        result.notes.append("never reconverged: " + "; ".join(stuck_cells))
    else:
        result.notes.append(
            "every approach reconverged at every swept interval and churn rate."
        )
    return result
