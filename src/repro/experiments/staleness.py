"""Directory staleness under provider churn (extension experiment).

Section III has providers report availability *periodically*; Section V-C
churns the network.  The missing corner is what churn does to the
*information*: when providers depart, their last reports linger in the
directories until they age out, and queries hand requesters machines that
no longer exist.

This experiment runs a LORM grid in which providers renew their reports on
a fixed period while alive, depart as a Poisson process, and leases expire
with TTL ``ttl``.  It measures the **stale-answer fraction** — the share
of returned providers that have already departed — as a function of the
TTL, against the no-expiry baseline (reports never withdrawn).  Shorter
TTLs bound staleness at the price of more renewal traffic, which is also
reported.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.models import AnalysisCurve
from repro.core.lorm import LormService
from repro.core.refresh import RefreshManager
from repro.core.resource import ResourceInfo
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult
from repro.sim.engine import Simulator
from repro.utils.seeding import SeedFactory
from repro.workloads.generator import GridWorkload, QueryKind

__all__ = ["run_staleness", "staleness_trial"]

#: Simulated seconds between a live provider's renewals.
_REPORT_PERIOD = 5.0
#: Queries per simulated second.
_QUERY_RATE = 5.0
#: Simulated duration per trial.
_DURATION = 200.0
#: Expiry sweep period.
_EXPIRY_PERIOD = 1.0


def staleness_trial(
    config: ExperimentConfig,
    ttl: float | None,
    *,
    departure_rate: float = 0.05,
) -> dict[str, float]:
    """One TTL setting; ``ttl=None`` disables expiry (the baseline).

    Returns the mean stale-answer fraction, the final departed share and
    the renewal-message count.
    """
    seeds = SeedFactory(config.seed).fork(f"staleness:{ttl}")
    schema = config.schema()
    service = LormService.build_full(config.dimension, schema, seed=config.seed)
    workload = GridWorkload(
        schema,
        infos_per_attribute=config.infos_per_attribute,
        seed=config.seed,
        mean_span_fraction=config.mean_span_fraction,
    )
    manager = RefreshManager(service, ttl=ttl if ttl is not None else 1e12)

    sim = Simulator()
    alive: set[str] = set()
    departed: set[str] = set()

    # Initial reports at t=0 and periodic renewals while alive.
    def _renew(provider_index: int) -> None:
        provider = workload.provider_name(provider_index)
        if provider not in alive:
            return
        for spec in schema:
            manager.report(
                ResourceInfo(
                    spec.name,
                    workload.provider_value(spec.name, provider_index),
                    provider,
                ),
                now=sim.now,
            )

    for p in range(workload.num_providers):
        alive.add(workload.provider_name(p))
        t = 0.0
        while t < _DURATION:
            sim.schedule_at(t, lambda p=p: _renew(p), name="renew")
            t += _REPORT_PERIOD

    # Provider departures: Poisson with the given rate.
    rng = seeds.numpy("departures")
    t = float(rng.exponential(1.0 / departure_rate))
    departure_times: list[float] = []
    while t < _DURATION:
        departure_times.append(t)
        t += float(rng.exponential(1.0 / departure_rate))

    def depart() -> None:
        if not alive:
            return
        candidates = sorted(alive)
        victim = candidates[int(rng.integers(len(candidates)))]
        alive.discard(victim)
        departed.add(victim)

    for dt in departure_times:
        sim.schedule_at(dt, depart, name="depart")

    if ttl is not None:
        manager.install_periodic_expiry(sim, _EXPIRY_PERIOD, _DURATION)

    # Queries sample the stale fraction of their answers.
    stale_fractions: list[float] = []
    queries = iter(
        workload.query_stream(
            int(_DURATION * _QUERY_RATE) + 1, 1, QueryKind.RANGE, label="staleness"
        )
    )

    def fire_query() -> None:
        query = next(queries)
        answer = service.multi_query(query).providers
        if answer:
            stale = len(answer & departed) / len(answer)
            stale_fractions.append(stale)

    qt = 1.0 / _QUERY_RATE
    while qt < _DURATION:
        sim.schedule_at(qt, fire_query, name="query")
        qt += 1.0 / _QUERY_RATE

    sim.run()
    return {
        "stale_fraction": float(np.mean(stale_fractions)) if stale_fractions else 0.0,
        "departed_share": len(departed) / workload.num_providers,
        "renewals": float(manager.renewals),
        "expirations": float(manager.expirations),
    }


def run_staleness(
    config: ExperimentConfig,
    ttls: tuple[float, ...] = (7.5, 15.0, 30.0, 60.0),
    *,
    departure_rate: float | None = None,
) -> FigureResult:
    """Stale-answer fraction vs lease TTL, with the no-expiry baseline.

    ``departure_rate`` defaults to losing roughly 40% of the providers over
    the run, so the baseline staleness is scale-independent.
    """
    if departure_rate is None:
        departure_rate = 0.4 * config.infos_per_attribute / _DURATION
    trials = {
        ttl: staleness_trial(config, ttl, departure_rate=departure_rate)
        for ttl in ttls
    }
    baseline = staleness_trial(config, None, departure_rate=departure_rate)

    xs = tuple(float(t) for t in ttls)
    result = FigureResult(
        figure_id="staleness",
        title="Stale answers vs lease TTL (provider churn, LORM)",
        x_label="lease TTL (s)",
        y_label="mean stale-answer fraction",
    )
    result.add(
        AnalysisCurve(
            "with expiry", xs, tuple(trials[t]["stale_fraction"] for t in ttls)
        )
    )
    result.add(
        AnalysisCurve(
            "no expiry (baseline)",
            xs,
            tuple(baseline["stale_fraction"] for _ in ttls),
        )
    )
    result.notes.append(
        f"departed share by end of run: {baseline['departed_share']:.0%}; "
        f"renewal messages per trial ~{trials[xs[0]]['renewals']:.0f}"
    )
    return result
