"""Shared overlay-node abstractions.

Every DHT node — Chord or Cycloid — stores opaque *items* under
``(namespace, key_id)`` pairs.  Namespaces let several logical indexes share
one physical overlay (Mercury's per-attribute hubs, MAAN's separate
attribute and value maps) while keeping per-node *directory size*
accounting — the quantity plotted throughout Figure 3 — exact.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any

__all__ = ["LookupResult", "OverlayNode", "WalkResult", "trace_fault_step"]


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a routed DHT lookup.

    Attributes
    ----------
    owner:
        The node responsible for the looked-up key — or, when the lookup
        failed (``complete=False``), the last node the route reached.
    hops:
        Logical hops (overlay messages) traversed from the requester to the
        owner — the paper's Figure 4 metric.
    path:
        Identifiers of every node on the route, requester first.
    complete:
        ``False`` when the route could not be finished under the active
        fault plan — the owner field then names the stall point, not a
        responsible node, and its answer must not be trusted.
    retries:
        Retransmission rounds spent along the route.
    timed_out:
        Whether the route died waiting on unreachable next hops (as
        opposed to exhausting its hop budget).
    """

    owner: "OverlayNode"
    hops: int
    path: tuple[Any, ...]
    complete: bool = True
    retries: int = 0
    timed_out: bool = False


class WalkResult(list):
    """Nodes visited by a range walk, plus truncation diagnostics.

    A ``list`` subclass so every existing consumer (iteration, ``len``,
    indexing, equality with plain lists) keeps working; walks cut short by
    dead successor chains or the ring-corruption safety valve set
    ``truncated`` with a ``reason`` instead of silently returning fewer
    nodes.
    """

    def __init__(
        self,
        nodes: Any = (),
        *,
        truncated: bool = False,
        reason: str = "",
        retries: int = 0,
        timed_out: bool = False,
    ) -> None:
        super().__init__(nodes)
        self.truncated = truncated
        self.reason = reason
        self.retries = retries
        self.timed_out = timed_out

    @property
    def complete(self) -> bool:
        """Whether the walk covered its full arc."""
        return not self.truncated


class OverlayNode:
    """A DHT node with namespaced key→items storage.

    Subclasses add their overlay-specific routing state (finger tables for
    Chord, the seven-entry routing table for Cycloid).
    """

    __slots__ = ("uid", "alive", "_store")

    def __init__(self, uid: Any) -> None:
        #: Overlay-specific identifier (int for Chord, (k, a) for Cycloid).
        self.uid = uid
        #: False once the node has left; dead nodes are skipped by routing.
        self.alive = True
        self._store: dict[str, dict[int, list[Any]]] = {}

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def store(self, namespace: str, key_id: int, item: Any) -> None:
        """Store ``item`` under ``key_id`` within ``namespace``."""
        self._store.setdefault(namespace, defaultdict(list))[key_id].append(item)

    def has_item(self, namespace: str, key_id: int, item: Any) -> bool:
        """Whether ``item`` is already stored under ``(namespace, key_id)``.

        Used by replication-aware transfers to avoid duplicating copies.
        """
        ns = self._store.get(namespace)
        if ns is None:
            return False
        return item in ns.get(key_id, ())

    def items_at(self, namespace: str, key_id: int) -> list[Any]:
        """Items stored under exactly ``(namespace, key_id)``."""
        ns = self._store.get(namespace)
        if ns is None:
            return []
        return list(ns.get(key_id, ()))

    def items_in(self, namespace: str) -> list[Any]:
        """All items in ``namespace`` regardless of key."""
        ns = self._store.get(namespace)
        if ns is None:
            return []
        return [item for bucket in ns.values() for item in bucket]

    def stored_entries(self) -> list[tuple[str, int, Any]]:
        """Every stored ``(namespace, key_id, item)`` triple (for re-homing)."""
        return [
            (namespace, key_id, item)
            for namespace, buckets in self._store.items()
            for key_id, bucket in buckets.items()
            for item in bucket
        ]

    def remove_items(self, namespace: str, key_id: int) -> list[Any]:
        """Remove and return all items under ``(namespace, key_id)``."""
        ns = self._store.get(namespace)
        if ns is None:
            return []
        return list(ns.pop(key_id, ()))

    def remove_item(self, namespace: str, key_id: int, item: Any) -> bool:
        """Remove one copy of ``item``; True if a copy was present."""
        ns = self._store.get(namespace)
        if ns is None:
            return False
        bucket = ns.get(key_id)
        if not bucket or item not in bucket:
            return False
        bucket.remove(item)
        if not bucket:
            del ns[key_id]
        return True

    def clear_storage(self) -> None:
        """Drop every stored item (used after transfer on departure)."""
        self._store.clear()

    def directory_size(self, namespace: str | None = None) -> int:
        """Number of stored resource-information pieces.

        With ``namespace`` given, counts only that namespace; otherwise the
        node's full directory.  This is Figure 3's per-node *directory size*.
        """
        if namespace is not None:
            ns = self._store.get(namespace)
            return sum(len(b) for b in ns.values()) if ns else 0
        return sum(len(b) for ns in self._store.values() for b in ns.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.alive else "dead"
        return f"<{type(self).__name__} {self.uid} {state} dir={self.directory_size()}>"


def trace_fault_step(
    tracer: Any,
    src: Any,
    dst: Any,
    choice: str,
    used: int,
    skipped: int,
    drops: list,
    hedges: list | None = None,
) -> None:
    """Emit one fault-path routing step into ``tracer`` (shared by both
    overlays' ``_lookup_faulty`` loops).

    ``dst=None`` means the step failed entirely — the drops/retries attach
    to the enclosing lookup span together with a "timeout" marker.
    Otherwise a hop span ``src -> dst`` is created and the step's drop,
    retry-round and failover annotations attach to it.  One "retry" event
    is emitted per retransmission round, so the retry-event count of a
    span tree always equals the ``LookupResult.retries`` accounting.
    ``drops`` holds the ``(dst_id, attempt)`` pairs observed by
    :func:`repro.sim.faults.deliver_first` and is cleared for the next step.
    ``hedges`` likewise holds ``(dst_id, won)`` pairs from hedged backup
    requests — each becomes a "hedge" event and marks the hop span with
    ``hedge``/``hedge_won`` attributes.
    """
    if dst is None:
        for dropped_id, attempt in drops:
            tracer.event("drop", target=dropped_id, attempt=attempt)
        for _ in range(used):
            tracer.event("retry")
        if hedges:
            for hedged_id, won in hedges:
                tracer.event("hedge", target=hedged_id, won=won)
        tracer.event("timeout", stuck_at=src)
    else:
        hop = tracer.hop(src, dst, choice)
        for dropped_id, attempt in drops:
            tracer.event("drop", span=hop, target=dropped_id, attempt=attempt)
        for _ in range(used):
            tracer.event("retry", span=hop)
        if skipped:
            tracer.event("failover", span=hop, skipped=skipped)
        if hedges:
            hop.attrs["hedge"] = True
            hop.attrs["hedge_won"] = any(won for _, won in hedges)
            for hedged_id, won in hedges:
                tracer.event("hedge", span=hop, target=hedged_id, won=won)
    drops.clear()
    if hedges:
        hedges.clear()
