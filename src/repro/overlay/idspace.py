"""Circular identifier-space arithmetic shared by every DHT.

A DHT identifier space is the ring of integers modulo ``2**bits``.  All
interval logic in Chord ("is ``x`` in ``(a, b]`` going clockwise?") and all
closest-node computations live here so the overlay code stays free of
modular-arithmetic pitfalls.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.utils.validation import require

__all__ = ["IdSpace", "closest_on_ring"]


def closest_on_ring(target: int, candidates: list[int], size: int) -> int:
    """The candidate at minimal ring distance to ``target``, ties clockwise.

    ``candidates`` must be sorted ascending and non-empty; only the two
    neighbours of ``target``'s insertion point can be closest, so this is
    the O(log n) equivalent of :meth:`IdSpace.closest`'s linear scan.
    Works for any cycle length ``size``, not just powers of two (Cycloid's
    intra-cluster cycle has length ``d``).

    Examples
    --------
    >>> closest_on_ring(0, [4, 12], 16)   # tie broken clockwise
    4
    >>> closest_on_ring(0, [10, 11], 16)
    11
    """
    target %= size
    n = len(candidates)
    if n == 1:
        return candidates[0]
    idx = bisect.bisect_left(candidates, target)
    succ = candidates[idx % n]
    pred = candidates[(idx - 1) % n]
    # The winner's ring distance equals its arc distance from ``target``
    # (the opposite arc always passes the other neighbour first), so
    # comparing the two arc distances decides; equality is the clockwise
    # tie, which goes to ``succ``.
    if (succ - target) % size <= (target - pred) % size:
        return succ
    return pred


@dataclass(frozen=True)
class IdSpace:
    """The ring of ``2**bits`` identifiers with clockwise orientation.

    Examples
    --------
    >>> s = IdSpace(4)
    >>> s.size
    16
    >>> s.clockwise_distance(14, 2)
    4
    >>> s.in_interval(0, 14, 2)
    True
    """

    bits: int

    def __post_init__(self) -> None:
        require(1 <= self.bits <= 160, f"bits must be in [1, 160], got {self.bits}")

    @property
    def size(self) -> int:
        """Number of identifiers on the ring, ``2**bits``."""
        return 1 << self.bits

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into the ring."""
        return value % self.size

    def clockwise_distance(self, frm: int, to: int) -> int:
        """Hops walking clockwise (increasing IDs) from ``frm`` to ``to``."""
        return (to - frm) % self.size

    def ring_distance(self, a: int, b: int) -> int:
        """Shortest distance between ``a`` and ``b`` in either direction."""
        d = (a - b) % self.size
        return min(d, self.size - d)

    def in_interval(
        self,
        x: int,
        a: int,
        b: int,
        *,
        closed_left: bool = False,
        closed_right: bool = True,
    ) -> bool:
        """Whether ``x`` lies in the clockwise interval from ``a`` to ``b``.

        Default bounds give Chord's canonical half-open ``(a, b]``.  When
        ``a == b`` the open interval covers the whole ring except the point
        itself (again Chord's convention for a single-node ring).
        """
        x, a, b = self.wrap(x), self.wrap(a), self.wrap(b)
        if a == b:
            if closed_left or closed_right:
                return True
            return x != a
        dist_x = self.clockwise_distance(a, x)
        dist_b = self.clockwise_distance(a, b)
        if dist_x == 0:
            return closed_left
        if dist_x == dist_b:
            return closed_right
        return dist_x < dist_b

    def closest(self, target: int, candidates: list[int]) -> int:
        """The candidate with minimal ring distance to ``target``.

        Ties are broken clockwise (the candidate reached first when walking
        clockwise from ``target``), which keeps key ownership deterministic.
        Candidates need not be sorted; callers that maintain a sorted index
        should prefer :meth:`closest_sorted`.
        """
        require(bool(candidates), "closest() needs at least one candidate")
        best = candidates[0]
        best_key = self._closeness_key(target, best)
        for cand in candidates[1:]:
            key = self._closeness_key(target, cand)
            if key < best_key:
                best, best_key = cand, key
        return best

    def closest_sorted(self, target: int, candidates: list[int]) -> int:
        """:meth:`closest` over an already-sorted candidate list, via bisect."""
        require(bool(candidates), "closest_sorted() needs at least one candidate")
        return closest_on_ring(target, candidates, self.size)

    def _closeness_key(self, target: int, candidate: int) -> tuple[int, int]:
        return (
            self.ring_distance(target, candidate),
            self.clockwise_distance(target, candidate),
        )
