"""DHT overlay substrates: circular ID spaces, Chord, Cycloid.

Chord (Stoica et al., 2003) is the flat DHT underlying the Mercury, SWORD
and MAAN comparators; Cycloid (Shen, Xu & Chen, 2006) is the hierarchical
constant-degree DHT underlying LORM.  Both are full simulated
implementations: routed lookups with hop accounting, key storage, node
join/leave with key transfer, and routing-state repair under churn.
"""

from repro.overlay.chord import ChordNode, ChordRing
from repro.overlay.cycloid import CycloidId, CycloidNode, CycloidOverlay
from repro.overlay.idspace import IdSpace
from repro.overlay.node import LookupResult, OverlayNode, WalkResult

__all__ = [
    "ChordNode",
    "ChordRing",
    "CycloidId",
    "CycloidNode",
    "CycloidOverlay",
    "IdSpace",
    "LookupResult",
    "OverlayNode",
    "WalkResult",
]
