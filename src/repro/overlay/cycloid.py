"""Cycloid DHT (Shen, Xu & Chen, Performance Evaluation 2006) — simulated.

Cycloid is the constant-degree hierarchical overlay LORM is built on.  With
dimension ``d`` it accommodates ``n = d * 2**d`` nodes; each node carries a
pair of indices ``(k, a)``:

* ``k`` — the *cyclic* index, an integer in ``[0, d)``.  Nodes sharing a
  cubical index are ordered by cyclic index on a small cycle, the *cluster*.
* ``a`` — the *cubical* index, a ``d``-bit number in ``[0, 2**d)``.
  Clusters are ordered by cubical index on one large cycle.

Each node maintains the seven-entry constant-degree routing table of the
Cycloid paper:

==================  =============================================when=====
entry               target
==================  ========================================================
cubical neighbour   ``((k-1) mod d,  a XOR 2**((k-1) mod d))`` — flips the
                    bit its cyclic position is responsible for
2 cyclic            ``((k-1) mod d, preceding / succeeding cluster)``
2 inside leaf set   cyclic predecessor / successor within the own cluster
2 outside leaf set  top node of the preceding / succeeding cluster on the
                    large cycle
==================  ========================================================

Routing emulates cube-connected-cycles routing: descend the local cluster
cycle one cyclic position per hop, taking the cubical link whenever the bit
that position governs differs from the target cluster, then walk the target
cluster to the wanted cyclic index.  Expected path length is ``O(d)``
(Theorem 4.7 uses ``d`` hops per lookup), with constant (7) out-degree —
the two properties LORM inherits.

Key assignment is cluster-first, as LORM requires: a key ``(k, a)`` belongs
to the nearest non-empty cluster to ``a`` on the large cycle, and within
that cluster to the node with the nearest cyclic index.  This makes the
cyclic dimension an order-preserving sub-space per cluster, the property
behind Proposition 3.1's intra-cluster range walk.
"""

from __future__ import annotations

import bisect
from collections import Counter
from collections.abc import Iterable
from typing import Any, NamedTuple

from repro.overlay.arraystore import RingVector
from repro.overlay.idspace import IdSpace, closest_on_ring
from repro.overlay.node import LookupResult, OverlayNode, WalkResult, trace_fault_step
from repro.sim.durability import (
    DurabilityPolicy,
    SuccessorPlacement,
    decodable_level,
    successor_replication,
)
from repro.sim.faults import DEFAULT_POLICY, LookupPolicy, deliver_first
from repro.sim.maintenance import RepairProgress, repair_buckets
from repro.sim.network import SimulatedNetwork
from repro.utils.validation import require

__all__ = ["CycloidId", "CycloidNode", "CycloidOverlay"]


class CycloidId(NamedTuple):
    """A Cycloid identifier: (cyclic index ``k``, cubical index ``a``)."""

    k: int
    a: int


class CycloidNode(OverlayNode):
    """A Cycloid node with the seven-entry constant-degree routing table."""

    __slots__ = (
        "dimension",
        "cubical_neighbor",
        "cyclic_neighbors",
        "inside_leaf",
        "outside_leaf",
    )

    def __init__(self, cid: CycloidId, dimension: int) -> None:
        super().__init__(cid)
        self.dimension = dimension
        self.cubical_neighbor: CycloidNode | None = None
        #: (node in preceding cluster, node in succeeding cluster), both at
        #: cyclic level k-1 when available.
        self.cyclic_neighbors: tuple[CycloidNode | None, CycloidNode | None] = (None, None)
        #: (cyclic predecessor, cyclic successor) within the own cluster.
        self.inside_leaf: tuple[CycloidNode | None, CycloidNode | None] = (None, None)
        #: (top of preceding cluster, top of succeeding cluster).
        self.outside_leaf: tuple[CycloidNode | None, CycloidNode | None] = (None, None)

    @property
    def cid(self) -> CycloidId:
        """The node's (k, a) identifier."""
        return self.uid  # type: ignore[return-value]

    @property
    def k(self) -> int:
        """Cyclic index."""
        return self.cid.k

    @property
    def a(self) -> int:
        """Cubical index (cluster)."""
        return self.cid.a

    def table_entries(self) -> list["CycloidNode"]:
        """All live routing-table entries, duplicates removed."""
        seen: dict[CycloidId, CycloidNode] = {}
        candidates = (
            self.cubical_neighbor,
            *self.cyclic_neighbors,
            *self.inside_leaf,
            *self.outside_leaf,
        )
        for node in candidates:
            if node is not None and node.alive and node is not self:
                seen[node.cid] = node
        return list(seen.values())

    def outlinks(self) -> set[CycloidId]:
        """Distinct live neighbours (Figure 3a metric; ≤ 7 by construction)."""
        return {node.cid for node in self.table_entries()}


class CycloidOverlay:
    """A simulated Cycloid overlay of dimension ``d``.

    Examples
    --------
    >>> overlay = CycloidOverlay(dimension=3)
    >>> overlay.build_full()
    >>> overlay.num_nodes
    24
    >>> result = overlay.lookup(overlay.node(CycloidId(0, 0)), CycloidId(2, 5))
    >>> result.owner.cid
    CycloidId(k=2, a=5)
    """

    def __init__(
        self,
        dimension: int,
        network: SimulatedNetwork | None = None,
        replication: int = 1,
        routing_mode: str = "adaptive",
        routing_cache: bool = True,
        durability: DurabilityPolicy | None = None,
    ) -> None:
        require(dimension >= 2, f"dimension must be >= 2, got {dimension}")
        require(
            routing_mode in ("adaptive", "msb"),
            f"routing_mode must be 'adaptive' or 'msb', got {routing_mode!r}",
        )
        #: Routing discipline while clusters disagree:
        #:   * "adaptive" (default) — descend immediately, fixing whichever
        #:     bit the current cyclic level governs; no ascending phase.
        #:     Correct for any occupancy here because the cubical neighbour
        #:     targets the closest node of the exact flipped cluster.
        #:   * "msb" — the Cycloid paper's three-phase discipline: ascend
        #:     to the most significant differing bit, then descend fixing
        #:     bits MSB-first.  Longer paths (the ascending phase is pure
        #:     overhead under full occupancy); kept for fidelity and
        #:     measured in benchmarks/test_ablation_routing.py.
        self.routing_mode = routing_mode
        self.dimension = dimension
        self.cubical_space = IdSpace(dimension)  # ring of 2**d clusters
        self.network = network if network is not None else SimulatedNetwork()
        #: The durability policy governing where a key's copies/fragments
        #: live.  The default — intra-cluster successor replication at
        #: ``replication`` copies — is byte-identical to the pre-policy
        #: hard-coded scheme: the owner plus ``replication - 1`` cluster
        #: successors (replicas stay inside the attribute's cluster, so
        #: the intra-cluster range walk still sees every key).  Default 1
        #: matches the paper; >= 2 survives crash failures (:meth:`fail`).
        self.durability = (
            durability if durability is not None else successor_replication(replication)
        )
        #: Copies (fragments) kept per key under the policy.
        self.replication = self.durability.fragments
        self.durability.validate(self)
        #: Hot-path flag: the seed's successor placement short-circuits
        #: the policy dispatch (and the linearize round-trip) in
        #: :meth:`replica_set`.
        self._native_placement = type(self.durability.placement) is SuccessorPlacement
        #: Requester behaviour under injected faults; never consulted while
        #: the network has no active fault injector.
        self.lookup_policy: LookupPolicy = DEFAULT_POLICY
        self._nodes: dict[CycloidId, CycloidNode] = {}
        #: cluster -> sorted flat vector of present cyclic indices (the
        #: array-backed membership core, ``repro.overlay.arraystore``)
        self._clusters: dict[int, RingVector] = {}
        #: sorted flat vector of non-empty cluster cubical indices
        self._cluster_ids: RingVector = RingVector()
        #: Memoised :meth:`closest_node` resolution (normalised key ->
        #: owner).  Pure derived state: valid only for the current
        #: membership, so every churn entry point (:meth:`join` /
        #: :meth:`leave` / :meth:`fail` / :meth:`build` — what ChurnGuard
        #: wraps at the service level) clears it.  ``routing_cache=False``
        #: disables memoisation (equivalence tests diff the two modes).
        self.routing_cache = routing_cache
        self._owner_cache: dict[CycloidId, CycloidNode] = {}
        #: Optional hop-level span tracer (:class:`repro.obs.spans.
        #: QueryTracer`).  ``None`` (the default) keeps the routing hot
        #: paths untouched beyond one ``is None`` dispatch per lookup/walk.
        self.tracer: Any | None = None

    def invalidate_routing_caches(self) -> None:
        """Drop the owner cache (membership changed)."""
        self._owner_cache.clear()

    # ------------------------------------------------------------------
    # Membership / construction
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum population, ``d * 2**d``."""
        return self.dimension * self.cubical_space.size

    @property
    def num_nodes(self) -> int:
        """Current live population."""
        return len(self._nodes)

    @property
    def num_clusters(self) -> int:
        """Current number of non-empty clusters."""
        return len(self._cluster_ids)

    @property
    def node_ids(self) -> list[CycloidId]:
        """Live node IDs, ordered by (cluster, cyclic index)."""
        return [
            CycloidId(k, a) for a in self._cluster_ids for k in self._clusters[a]
        ]

    def node(self, cid: CycloidId) -> CycloidNode:
        """The live node with identifier ``cid``."""
        return self._nodes[cid]

    def nodes(self) -> Iterable[CycloidNode]:
        """All live nodes."""
        return (self._nodes[cid] for cid in self.node_ids)

    def cluster_members(self, a: int) -> list[CycloidNode]:
        """Live nodes of cluster ``a`` ordered by cyclic index."""
        return [self._nodes[CycloidId(k, a)] for k in self._clusters.get(a, [])]

    def build(self, node_ids: Iterable[CycloidId]) -> None:
        """Construct a stabilized overlay over ``node_ids`` in one shot."""
        ids = sorted({CycloidId(k % self.dimension, a % self.cubical_space.size)
                      for k, a in node_ids})
        require(bool(ids), "cannot build an empty overlay")
        self._nodes = {cid: CycloidNode(cid, self.dimension) for cid in ids}
        grouped: dict[int, list[int]] = {}
        for cid in ids:
            grouped.setdefault(cid.a, []).append(cid.k)
        self._clusters = {a: RingVector(ks) for a, ks in grouped.items()}
        self._cluster_ids = RingVector(self._clusters)
        self.invalidate_routing_caches()
        for node in self._nodes.values():
            self._refresh_routing_state(node)

    def build_full(self) -> None:
        """Construct the complete ``d * 2**d`` overlay (the paper's 2048)."""
        self.build(
            CycloidId(k, a)
            for a in range(self.cubical_space.size)
            for k in range(self.dimension)
        )

    # ------------------------------------------------------------------
    # Oracle helpers
    # ------------------------------------------------------------------
    def nearest_cluster(self, a: int) -> int:
        """The non-empty cluster nearest to cubical index ``a``.

        Bisect over the maintained sorted cluster index — with ``2**d``
        clusters a linear closest-scan dominated every lookup.
        """
        require(bool(self._cluster_ids.data), "overlay is empty")
        a = self.cubical_space.wrap(a)
        if a in self._clusters:
            return a
        return closest_on_ring(a, self._cluster_ids.data, self.cubical_space.size)

    def closest_node(self, target: CycloidId) -> CycloidNode:
        """The live node owning key ``target`` (cluster-first closeness).

        First the nearest non-empty cluster to ``target.a`` on the large
        cycle, then the node with cyclic index nearest ``target.k`` (ties
        clockwise) inside that cluster.  Memoised per membership epoch:
        every lookup, store and replica-set computation resolves an owner,
        and workload keys (attribute roots, hashed values) repeat heavily.
        """
        d = self.dimension
        key = CycloidId(target.k % d, self.cubical_space.wrap(target.a))
        node = self._owner_cache.get(key)
        if node is None:
            cluster = self.nearest_cluster(key.a)
            best = closest_on_ring(key.k, self._clusters[cluster].data, d)
            node = self._nodes[CycloidId(best, cluster)]
            if self.routing_cache:
                self._owner_cache[key] = node
        return node

    def _cluster_neighbor(self, a: int, direction: int) -> int | None:
        """Nearest non-empty cluster strictly after (+1) / before (-1) ``a``.

        Wraps around the large cycle; returns ``None`` only when ``a`` is
        the sole non-empty cluster.
        """
        ids = self._cluster_ids.data
        if not ids:
            return None
        if len(ids) == 1:
            return None if ids[0] == a else ids[0]
        if direction > 0:
            idx = bisect.bisect_right(ids, a) % len(ids)
        else:
            idx = (bisect.bisect_left(ids, a) - 1) % len(ids)
        return ids[idx]

    def _refresh_routing_state(self, node: CycloidNode) -> None:
        """Derive all seven routing entries from the membership oracle."""
        self._refresh_leaf_sets(node)
        self._refresh_links(node)

    def _refresh_leaf_sets(self, node: CycloidNode) -> None:
        """Inside and outside leaf sets (the cluster-local entries)."""
        k, a = node.cid

        # Inside leaf set: cyclic predecessor and successor in own cluster.
        ks = self._clusters[a].data
        if len(ks) == 1:
            node.inside_leaf = (None, None)
        else:
            idx = bisect.bisect_left(ks, k)
            pred = self._nodes[CycloidId(ks[(idx - 1) % len(ks)], a)]
            succ = self._nodes[CycloidId(ks[(idx + 1) % len(ks)], a)]
            node.inside_leaf = (pred, succ)

        # Outside leaf set: top (largest cyclic index) nodes of the adjacent
        # clusters on the large cycle.
        prev_cluster = self._cluster_neighbor(a, -1)
        next_cluster = self._cluster_neighbor(a, +1)
        out_prev = (
            self._nodes[CycloidId(self._clusters[prev_cluster].data[-1], prev_cluster)]
            if prev_cluster is not None else None
        )
        out_next = (
            self._nodes[CycloidId(self._clusters[next_cluster].data[-1], next_cluster)]
            if next_cluster is not None else None
        )
        node.outside_leaf = (
            out_prev if out_prev is not node else None,
            out_next if out_next is not node else None,
        )

    def _refresh_links(self, node: CycloidNode) -> None:
        """Cubical and cyclic neighbours (the long-range routing entries)."""
        d = self.dimension
        k, a = node.cid
        j = (k - 1) % d

        # Cubical neighbour: level j in the cluster differing at bit j.
        flipped = a ^ (1 << j)
        cub = self.closest_node(CycloidId(j, flipped))
        node.cubical_neighbor = cub if cub is not node else None

        # Cyclic neighbours: level-(k-1) nodes of adjacent non-empty clusters.
        prev_cluster = self._cluster_neighbor(a, -1)
        next_cluster = self._cluster_neighbor(a, +1)
        cyc_prev = (
            self.closest_node(CycloidId(j, prev_cluster))
            if prev_cluster is not None else None
        )
        cyc_next = (
            self.closest_node(CycloidId(j, next_cluster))
            if next_cluster is not None else None
        )
        node.cyclic_neighbors = (
            cyc_prev if cyc_prev is not node else None,
            cyc_next if cyc_next is not node else None,
        )

    # ------------------------------------------------------------------
    # Incremental maintenance (budgeted-scheduler support)
    # ------------------------------------------------------------------
    def stabilize_step(self, node: CycloidNode) -> None:
        """One stabilization step: refresh ``node``'s inside and outside
        leaf sets (the cluster-local links a real Cycloid node exchanges
        with its cycle neighbours).  The unit of the maintenance
        scheduler's *stabilize* budget; counts one maintenance message."""
        if not node.alive or node.a not in self._clusters:
            return
        self._refresh_leaf_sets(node)
        self.network.count_maintenance(1)

    def refresh_routing_step(self, node: CycloidNode) -> None:
        """One routing-refresh step: rebuild ``node``'s cubical and cyclic
        neighbours (the long-range entries).  The unit of the scheduler's
        *refresh* budget; counts one maintenance message."""
        if not node.alive or node.a not in self._clusters:
            return
        self._refresh_links(node)
        self.network.count_maintenance(1)

    def repair_replication_step(
        self,
        budget: int | None = None,
        after: tuple[str, int] | None = None,
    ) -> RepairProgress:
        """Anti-entropy replica repair of up to ``budget`` key buckets.

        See :meth:`ChordRing.repair_replication_step` — identical contract;
        keys are the linearized ``(k, a)`` storage identifiers.
        """
        return repair_buckets(
            self, lambda key_id: self.replica_set(self.delinearize(key_id)),
            budget, after, policy=self.durability,
        )

    # ------------------------------------------------------------------
    # Routed lookup
    # ------------------------------------------------------------------
    @property
    def faults_active(self) -> bool:
        """Whether the shared network currently injects faults."""
        return self.network.faults_active

    def lookup(
        self,
        start: CycloidNode,
        target: CycloidId,
        policy: LookupPolicy | None = None,
    ) -> LookupResult:
        """Route from ``start`` to the owner of key ``target``.

        Cube-connected-cycles emulation: while the cubical index disagrees
        with the owner's cluster, descend one cyclic level per hop — via the
        cubical link when the bit governed by that level differs, via the
        inside leaf set otherwise — then walk the final cluster's small
        cycle to the owner.  Every hop follows a maintained routing-table
        link; the membership oracle is used only to know when to stop.

        With a fault injector active the route instead runs under
        ``policy`` (default :attr:`lookup_policy`): greedy strictly-
        improving routing with a purely local stop test, lossy hops,
        retries and alternate-entry failover — the oracle is never
        consulted and an unfinishable route returns ``complete=False``
        rather than raising.
        """
        if self.tracer is not None:
            return self._lookup_traced(start, target, policy)
        if self.faults_active:
            return self._lookup_faulty(start, target, policy or self.lookup_policy)
        return self._lookup_plain(start, target)

    def _lookup_plain(self, start: CycloidNode, target: CycloidId) -> LookupResult:
        """The fault-free CCC route (oracle stop test)."""
        owner = self.closest_node(target)
        cur = start
        hops = 0
        path = [cur.cid]
        visited = {cur.cid}
        # Fallback big-cycle traversal mode: entered when the CCC/greedy
        # steps revisit a node (possible while routing state is being
        # repaired under churn).  It walks strictly clockwise — outside
        # leaf sets across clusters, then inside leaf successors within the
        # owner's cluster — which terminates unconditionally.
        deterministic = False
        max_hops = 10 * self.dimension + 3 * len(self._cluster_ids) + 4
        while cur is not owner and hops < max_hops:
            if deterministic:
                nxt = self._clockwise_hop(cur, owner)
            else:
                nxt = self._next_hop(cur, owner)
                if nxt is None or nxt is cur or nxt.cid in visited:
                    deterministic = True
                    nxt = self._clockwise_hop(cur, owner)
            if nxt is None or nxt is cur:
                break
            cur = nxt
            hops += 1
            path.append(cur.cid)
            visited.add(cur.cid)
            self.network.count_hop()
        if cur is not owner:
            raise RuntimeError(
                f"Cycloid routing did not converge: {start.cid} -> {target} "
                f"stopped at {cur.cid} (owner {owner.cid}) after {hops} hops"
            )
        return LookupResult(owner=cur, hops=hops, path=tuple(path))

    def _lookup_traced(
        self,
        start: CycloidNode,
        target: CycloidId,
        policy: LookupPolicy | None,
    ) -> LookupResult:
        """Route with span tracing: identical result, plus one LOOKUP span
        with per-hop child spans (post hoc when fault-free, live with
        drop/retry/failover annotations on the fault path)."""
        tracer = self.tracer
        with tracer.span(
            "lookup", "cycloid.lookup", origin=start.cid, key=target
        ) as span:
            if self.faults_active:
                result = self._lookup_faulty(
                    start, target, policy or self.lookup_policy, tracer=tracer
                )
            else:
                result = self._lookup_plain(start, target)
                prev = start
                for cid in result.path[1:]:
                    node = self._nodes[cid]
                    tracer.hop(prev.cid, cid, self.edge_kind(prev, node))
                    prev = node
            span.attrs.update(
                owner=result.owner.cid, hops=result.hops,
                complete=result.complete, retries=result.retries,
                timed_out=result.timed_out,
            )
        return result

    def edge_kind(self, src: CycloidNode, dst: CycloidNode) -> str:
        """Which routing-table entry of ``src`` reaches ``dst``.

        Classification only (tracing annotations); priority follows the
        CCC routing discipline: cubical link, inside leaf set, cyclic
        neighbours, outside leaf set.
        """
        if dst is src.cubical_neighbor:
            return "cubical"
        if dst is src.inside_leaf[0] or dst is src.inside_leaf[1]:
            return "inside-leaf"
        if dst is src.cyclic_neighbors[0] or dst is src.cyclic_neighbors[1]:
            return "cyclic"
        if dst is src.outside_leaf[0] or dst is src.outside_leaf[1]:
            return "outside-leaf"
        return "unknown"

    def _key_badness(self, node: CycloidNode, tk: int, ta: int) -> tuple[int, int]:
        """Cluster-first distance of ``node`` to the raw key ``(tk, ta)``.

        The local analogue of :meth:`closest_node`'s closeness, computable
        without the membership oracle: large-cycle distance of the cubical
        indices first, cyclic distance second.
        """
        cluster_dist = self.cubical_space.ring_distance(node.a, ta)
        cyclic_dist = min((node.k - tk) % self.dimension,
                          (tk - node.k) % self.dimension)
        return (cluster_dist, cyclic_dist)

    def _lookup_faulty(
        self,
        start: CycloidNode,
        target: CycloidId,
        policy: LookupPolicy,
        tracer: Any | None = None,
    ) -> LookupResult:
        """The fault-path route: greedy descent with a local stop test.

        Each node forwards to its strictly key-closer routing-table
        entries, nearest first; a node with no closer live entry believes
        it owns the key and answers.  Strict improvement bounds the route
        without any oracle termination check, and the believed owner can
        legitimately differ from the true one while routing state is
        degraded — the caller sees that as missing matches, not as a wrong
        "complete" claim from the oracle.
        """
        tk = target.k % self.dimension
        ta = target.a % self.cubical_space.size
        cur = start
        hops = 0
        retries = 0
        path = [cur.cid]
        budget = (
            policy.hop_budget
            or 10 * self.dimension + 3 * self.cubical_space.size + 4
        )
        drops: list[tuple[int, int]] = []
        hedges: list[tuple[int, bool]] = []
        on_drop = None if tracer is None else (
            lambda dst_id, attempt: drops.append((dst_id, attempt))
        )
        on_hedge = None if tracer is None else (
            lambda dst_id, won: hedges.append((dst_id, won))
        )
        while True:
            own = self._key_badness(cur, tk, ta)
            improving = sorted(
                (n for n in cur.table_entries()
                 if self._key_badness(n, tk, ta) < own),
                key=lambda n: self._key_badness(n, tk, ta),
            )
            if not improving:
                # Local minimum: cur believes it owns the key.
                return LookupResult(
                    owner=cur, hops=hops, path=tuple(path), retries=retries
                )
            if hops >= budget:
                return LookupResult(
                    owner=cur, hops=hops, path=tuple(path),
                    complete=False, retries=retries,
                )
            if not policy.finger_fallback:
                improving = improving[:1]
            nxt, used, skipped = deliver_first(
                self.network,
                self.linearize(cur.cid),
                [(self.linearize(n.cid), n) for n in improving],
                policy,
                on_drop,
                on_hedge,
            )
            retries += used
            if tracer is not None:
                trace_fault_step(
                    tracer,
                    cur.cid,
                    nxt.cid if nxt is not None else None,
                    self.edge_kind(cur, nxt) if nxt is not None else "",
                    used, skipped, drops, hedges,
                )
            if nxt is None:
                return LookupResult(
                    owner=cur, hops=hops, path=tuple(path),
                    complete=False, retries=retries, timed_out=True,
                )
            cur = nxt
            hops += 1
            path.append(cur.cid)
            self.network.count_hop()

    def _next_hop(self, cur: CycloidNode, owner: CycloidNode) -> CycloidNode | None:
        d = self.dimension
        if cur.a == owner.a:
            # Final phase: walk the cluster's small cycle the short way.
            pred, succ = cur.inside_leaf
            forward = (owner.k - cur.k) % d
            backward = (cur.k - owner.k) % d
            primary, secondary = (succ, pred) if forward <= backward else (pred, succ)
            for cand in (primary, secondary):
                if cand is not None and cand.alive:
                    return cand
            return self._greedy_fallback(cur, owner)

        if self.routing_mode == "msb":
            return self._next_hop_msb(cur, owner)

        j = (cur.k - 1) % d
        differing = (cur.a ^ owner.a) >> j & 1
        if differing:
            cand = cur.cubical_neighbor
            if cand is not None and cand.alive and cand.a != cur.a:
                return cand
        else:
            pred = cur.inside_leaf[0]
            if pred is not None and pred.alive:
                return pred
            cand = cur.cubical_neighbor  # singleton cluster: leave via cube
            if cand is not None and cand.alive:
                return cand
        return self._greedy_fallback(cur, owner)

    def _next_hop_msb(self, cur: CycloidNode, owner: CycloidNode) -> CycloidNode | None:
        """The Cycloid paper's MSB-first step (clusters still disagree).

        Let ``l`` be the most significant differing bit.  Ascend (inside
        leaf successor) while the node's level is too low to fix it, flip
        via the cubical link when standing exactly at level ``l + 1``, and
        descend (inside leaf predecessor) when above it.
        """
        l = (cur.a ^ owner.a).bit_length() - 1
        pred, succ = cur.inside_leaf
        if cur.k == (l + 1) % self.dimension or (cur.k - 1) % self.dimension == l:
            cand = cur.cubical_neighbor
            if cand is not None and cand.alive and cand.a != cur.a:
                return cand
        elif cur.k < l + 1:
            if succ is not None and succ.alive:
                return succ  # ascending phase
        else:
            if pred is not None and pred.alive:
                return pred  # descending phase
        return self._greedy_fallback(cur, owner)

    def _clockwise_hop(self, cur: CycloidNode, owner: CycloidNode) -> CycloidNode | None:
        """Strictly clockwise progress: next cluster's top node until the
        owner's cluster is reached, then the inside-leaf successor.

        Every hop moves to a node not seen before within this mode, so the
        walk terminates within #clusters + cluster-size hops.
        """
        if cur.a != owner.a:
            for cand in (cur.outside_leaf[1], cur.cyclic_neighbors[1]):
                if cand is not None and cand.alive:
                    return cand
            return None
        succ = cur.inside_leaf[1]
        return succ if succ is not None and succ.alive else None

    def _greedy_fallback(self, cur: CycloidNode, owner: CycloidNode) -> CycloidNode | None:
        """Strictly-improving greedy step over the whole routing table.

        Used when the ideal CCC link is missing (sparse overlay or between
        repairs under churn).  Falls back to the outside leaf set — the
        large-cycle traversal — which always makes cluster-ring progress, so
        routing still terminates.
        """
        def badness(node: CycloidNode) -> tuple[int, int]:
            cluster_dist = self.cubical_space.ring_distance(node.a, owner.a)
            cyclic_dist = min((node.k - owner.k) % self.dimension,
                              (owner.k - node.k) % self.dimension)
            return (cluster_dist, cyclic_dist)

        current_badness = badness(cur)
        best: CycloidNode | None = None
        best_badness = current_badness
        for cand in cur.table_entries():
            b = badness(cand)
            if b < best_badness:
                best, best_badness = cand, b
        if best is not None:
            return best
        # No strictly-improving entry: take an outside-leaf step clockwise.
        for cand in (cur.outside_leaf[1], cur.outside_leaf[0]):
            if cand is not None and cand.alive:
                return cand
        return None

    # ------------------------------------------------------------------
    # Intra-cluster walk (LORM's range-query primitive)
    # ------------------------------------------------------------------
    def walk_cluster(
        self,
        start: CycloidNode,
        k_from: int,
        k_to: int,
        policy: LookupPolicy | None = None,
    ) -> WalkResult:
        """Nodes of ``start``'s cluster covering cyclic sector — see
        :meth:`_walk_cluster_impl`; with a tracer attached the walk is
        wrapped in a WALK span whose hop children are the leaf steps."""
        if self.tracer is None:
            return self._walk_cluster_impl(start, k_from, k_to, policy)
        tracer = self.tracer
        with tracer.span(
            "walk", "cycloid.walk",
            origin=start.cid,
            k_from=k_from % self.dimension,
            k_to=k_to % self.dimension,
        ) as span:
            result = self._walk_cluster_impl(start, k_from, k_to, policy)
            prev = result[0]
            for node in result[1:]:
                tracer.hop(prev.cid, node.cid, "inside-leaf")
                prev = node
            for _ in range(result.retries):
                tracer.event("retry")
            if result.truncated:
                tracer.event("truncated", reason=result.reason)
            if result.timed_out:
                tracer.event("timeout")
            span.attrs.update(
                visited=len(result), truncated=result.truncated,
                retries=result.retries,
            )
        return result

    def _walk_cluster_impl(
        self,
        start: CycloidNode,
        k_from: int,
        k_to: int,
        policy: LookupPolicy | None = None,
    ) -> WalkResult:
        """Nodes of ``start``'s cluster covering cyclic sector [k_from, k_to].

        LORM's range query routes to the root of the lower bound and then
        forwards along cluster successors while cyclic positions of the
        queried range remain ahead (Section III).  Returns the visited
        nodes in order, ``start`` first; the caller passes
        ``start = closest(k_from)``.  By Proposition 3.1 the visited nodes
        cover every cyclic sector the value range can map into.

        Ownership within a cluster is nearest-cyclic-index, so the
        boundary between two adjacent members sits at the midpoint of
        their gap (ties clockwise); the walk continues while the next
        member's first owned position still lies within the queried span —
        which also handles ranges covering (almost) the whole cluster,
        where the end owner can wrap behind the start.

        Returns a :class:`WalkResult` (a ``list`` of nodes): a walk cut
        short by a broken leaf chain — or, under an active fault injector,
        by an unreachable cluster successor — is marked ``truncated`` and
        counted in ``MessageStats.walk_truncations``.
        """
        policy = policy or self.lookup_policy
        fault_mode = self.faults_active
        d = self.dimension
        k_from %= d
        k_to %= d
        span = (k_to - k_from) % d
        num_members = len(self._clusters.get(start.a, ()))
        result = WalkResult([start])
        cur = start
        while len(result) < num_members:
            succ = cur.inside_leaf[1]
            if succ is None or not succ.alive:
                # Mid-repair leaf chain: the rest of the sector is
                # unreachable from here.
                self._truncate_walk(result, "broken cluster leaf chain")
                break
            if succ is start:
                break
            # First cyclic position owned by succ, clockwise from cur:
            # the midpoint of the gap (ties go clockwise, i.e. to succ).
            gap = (succ.k - cur.k) % d
            first_of_succ = (cur.k + (gap + 1) // 2) % d
            if (first_of_succ - k_from) % d > span:
                break
            if fault_mode:
                nxt, retries, _skipped = deliver_first(
                    self.network,
                    self.linearize(cur.cid),
                    [(self.linearize(succ.cid), succ)],
                    policy,
                )
                result.retries += retries
                if nxt is None:
                    self._truncate_walk(result, "unreachable cluster successor")
                    result.timed_out = True
                    break
            cur = succ
            result.append(cur)
        return result

    def _truncate_walk(self, result: WalkResult, reason: str) -> None:
        """Flag ``result`` truncated (first reason wins) and count it."""
        if not result.truncated:
            result.truncated = True
            result.reason = reason
        self.network.count_walk_truncation()

    # ------------------------------------------------------------------
    # Key storage
    # ------------------------------------------------------------------
    def native_holders(self, key_id: int, count: int) -> list[CycloidNode]:
        """The closest node plus the next ``count - 1`` distinct members
        clockwise in its cluster — the intra-cluster holders
        :class:`~repro.sim.durability.SuccessorPlacement` delegates to.
        ``key_id`` is the linearized ``(k, a)`` storage identifier."""
        owner = self.closest_node(self.delinearize(key_id))
        members = self.cluster_members(owner.a)
        idx = bisect.bisect_left(self._clusters[owner.a].data, owner.k)
        count = min(count, len(members))
        return [members[(idx + offset) % len(members)] for offset in range(count)]

    def replica_set(self, key: CycloidId) -> list[CycloidNode]:
        """Nodes that should hold ``key`` under the durability policy
        (default: the closest node plus the next ``replication - 1``
        distinct members clockwise in its cluster)."""
        if self._native_placement:
            owner = self.closest_node(key)
            members = self.cluster_members(owner.a)
            idx = bisect.bisect_left(self._clusters[owner.a].data, owner.k)
            count = min(self.replication, len(members))
            return [
                members[(idx + offset) % len(members)] for offset in range(count)
            ]
        return self.durability.holders(self, self.linearize(key))

    def store(self, namespace: str, key: CycloidId, item: Any) -> CycloidNode:
        """Place ``item`` at the owner of ``key`` (oracle placement).

        With ``replication > 1`` copies go to cluster successors (counted
        as maintenance messages).
        """
        replicas = self.replica_set(key)
        for holder in replicas:
            holder.store(namespace, self.linearize(key), item)
        if len(replicas) > 1:
            self.network.count_maintenance(len(replicas) - 1)
        return replicas[0]

    def routed_store(
        self, start: CycloidNode, namespace: str, key: CycloidId, item: Any
    ) -> LookupResult:
        """Insert via a routed lookup from ``start`` (counts hops)."""
        result = self.lookup(start, key)
        result.owner.store(namespace, self.linearize(key), item)
        for holder in self.replica_set(key)[1:]:
            if holder is not result.owner:
                holder.store(namespace, self.linearize(key), item)
                self.network.count_maintenance(1)
        return result

    def discard(self, namespace: str, key: CycloidId, item: Any) -> int:
        """Remove ``item``'s copies from the key's replica set; returns the
        number of copies removed (lease-expiry support)."""
        key_id = self.linearize(key)
        removed = 0
        for holder in self.replica_set(key):
            if holder.remove_item(namespace, key_id, item):
                removed += 1
        return removed

    def linearize(self, cid: CycloidId) -> int:
        return cid.a * self.dimension + (cid.k % self.dimension)

    def delinearize(self, value: int) -> CycloidId:
        """Inverse of the internal (k, a) → int storage-key mapping."""
        return CycloidId(value % self.dimension, value // self.dimension)

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def join(self, cid: CycloidId) -> CycloidNode:
        """A new node joins and takes over the keys now closest to it."""
        cid = CycloidId(cid.k % self.dimension, cid.a % self.cubical_space.size)
        require(cid not in self._nodes, f"node {cid} already present")
        node = CycloidNode(cid, self.dimension)
        had_members = bool(self._nodes)

        self._nodes[cid] = node
        ks = self._clusters.setdefault(cid.a, RingVector())
        ks.add(cid.k)
        if len(ks) == 1:
            self._cluster_ids.add(cid.a)
        self.invalidate_routing_caches()

        self._refresh_routing_state(node)
        self.network.count_maintenance(7)
        if had_members:
            # Keys the newcomer now owns may sit on several donors: its own
            # cluster's members (intra-cluster redistribution) and the
            # nearest non-empty cluster on either side (keys whose target
            # cluster was empty and had been pushed outward).
            donors: list[CycloidNode] = [
                member for member in self.cluster_members(cid.a) if member is not node
            ]
            for direction in (-1, +1):
                adjacent = self._cluster_neighbor(cid.a, direction)
                if adjacent is not None and adjacent != cid.a:
                    donors.extend(self.cluster_members(adjacent))
            moved = 0
            incoming: dict[tuple[str, int], Counter] = {}
            for donor in donors:
                donated: dict[tuple[str, int], Counter] = {}
                for namespace, key_id, item in donor.stored_entries():
                    if self.closest_node(self.delinearize(key_id)) is node:
                        donated.setdefault((namespace, key_id), Counter())[item] += 1
                for bucket_key, pieces in donated.items():
                    donor.remove_items(bucket_key[0], bucket_key[1])
                    # Several donors can hold replica copies of the same
                    # piece; merge with max so the newcomer receives each
                    # piece's true multiplicity, not the sum over replicas.
                    bucket = incoming.setdefault(bucket_key, Counter())
                    for item, count in pieces.items():
                        if count > bucket[item]:
                            bucket[item] = count
            for (namespace, key_id), pieces in incoming.items():
                for item, count in pieces.items():
                    for _ in range(count):
                        node.store(namespace, key_id, item)
                        moved += 1
            if moved:
                self.network.count_maintenance(1)
        self._repair_neighbourhood(node)
        return node

    def leave(self, cid: CycloidId) -> None:
        """Graceful departure: keys re-home to the new closest node."""
        require(len(self._nodes) > 1, "cannot remove the last node")
        node = self._nodes.pop(cid)
        ks = self._clusters[cid.a]
        ks.remove(cid.k)
        if not ks:
            del self._clusters[cid.a]
            self._cluster_ids.remove(cid.a)
        node.alive = False
        self.invalidate_routing_caches()
        outgoing: dict[tuple[str, int], Counter] = {}
        for namespace, key_id, item in node.stored_entries():
            outgoing.setdefault((namespace, key_id), Counter())[item] += 1
        for (namespace, key_id), pieces in outgoing.items():
            new_owner = self.closest_node(self.delinearize(key_id))
            # See ChordRing.leave: the new owner may already hold replica
            # copies — top up to the departing node's count so identical
            # items stay distinct pieces without duplicating replicas.
            held = Counter(new_owner.items_at(namespace, key_id))
            for item, count in pieces.items():
                for _ in range(count - held[item]):
                    new_owner.store(namespace, key_id, item)
        node.clear_storage()
        self.network.count_maintenance(2)
        self._repair_neighbourhood(node)

    def fail(self, cid: CycloidId) -> None:
        """Crash failure: the node vanishes without handing off its keys.

        With ``replication >= 2`` the intra-cluster replicas keep every key
        readable; :meth:`repair_replication` then restores the replica
        count.  With ``replication = 1`` keys held only here are lost.
        """
        require(len(self._nodes) > 1, "cannot remove the last node")
        node = self._nodes.pop(cid)
        ks = self._clusters[cid.a]
        ks.remove(cid.k)
        if not ks:
            del self._clusters[cid.a]
            self._cluster_ids.remove(cid.a)
        node.alive = False
        self.invalidate_routing_caches()
        node.clear_storage()  # the crashed node's memory is gone
        self._repair_neighbourhood(node)

    def repair_replication(self) -> int:
        """Restore every key to exactly its replica set; returns copies moved.

        See :meth:`ChordRing.repair_replication`: surviving per-holder
        counts reduce through
        :func:`~repro.sim.durability.decodable_level` — at the default
        decode threshold of 1 the seed's ``max`` merge (identical items
        keep their multiplicity while replica copies count once); under
        an erasure policy undecodable fragments are purged.
        """
        threshold = self.durability.threshold
        surviving: dict[tuple[str, int], dict[Any, list[int]]] = {}
        for node in list(self.nodes()):
            held: dict[tuple[str, int], Counter] = {}
            for namespace, key_id, item in node.stored_entries():
                held.setdefault((namespace, key_id), Counter())[item] += 1
            node.clear_storage()
            for bucket_key, pieces in held.items():
                bucket = surviving.setdefault(bucket_key, {})
                for item, count in pieces.items():
                    bucket.setdefault(item, []).append(count)
        moved = 0
        for (namespace, key_id), pieces in surviving.items():
            replicas = self.replica_set(self.delinearize(key_id))
            for item, counts in pieces.items():
                level = decodable_level(counts, threshold)
                if level == 0:
                    continue
                for holder in replicas:
                    for _ in range(level):
                        holder.store(namespace, key_id, item)
                    moved += level
        if moved:
            self.network.count_maintenance(moved)
        return moved

    def _repair_neighbourhood(self, node: CycloidNode) -> None:
        """Refresh routing state around a membership change.

        Cycloid's self-organization repairs the leaf sets of affected
        cluster members and the outside leaf sets / cyclic links of the
        adjacent clusters; distant cubical links are refreshed lazily by
        :meth:`stabilize_all`.
        """
        affected: list[CycloidNode] = []
        if node.a in self._clusters:
            affected.extend(self.cluster_members(node.a))
        for direction in (-1, +1):
            adjacent = self._cluster_neighbor(node.a, direction)
            if adjacent is not None and adjacent != node.a:
                affected.extend(self.cluster_members(adjacent))
        for member in affected:
            self._refresh_routing_state(member)
            self.network.count_maintenance(1)

    def stabilize_all(self) -> None:
        """Periodic stabilization: every node re-derives its routing state."""
        for node in list(self.nodes()):
            self._refresh_routing_state(node)
            self.network.count_maintenance(1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def outlink_counts(self) -> list[int]:
        """Per-node count of distinct live neighbours (Figure 3a; ≤ 7)."""
        return [len(node.outlinks()) for node in self.nodes()]

    def directory_sizes(self, namespace: str | None = None) -> list[int]:
        """Per-node directory sizes (Figure 3b–d)."""
        return [node.directory_size(namespace) for node in self.nodes()]

    def check_invariants(self) -> None:
        """Verify leaf-set mutuality and cluster ordering (test support)."""
        for a, ks in self._clusters.items():
            assert ks == sorted(ks), f"cluster {a} not ordered"
            members = self.cluster_members(a)
            for idx, member in enumerate(members):
                if len(members) == 1:
                    assert member.inside_leaf == (None, None)
                    continue
                pred, succ = member.inside_leaf
                assert pred is members[(idx - 1) % len(members)], (
                    f"{member.cid}: inside-leaf predecessor mismatch"
                )
                assert succ is members[(idx + 1) % len(members)], (
                    f"{member.cid}: inside-leaf successor mismatch"
                )
