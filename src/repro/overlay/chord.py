"""Chord DHT (Stoica et al., IEEE/ACM ToN 2003) — simulated, with churn.

Chord is the flat DHT the paper uses underneath all three comparator
approaches ("To be comparable, we use Chord for attribute hubs in Mercury,
and we replace Bamboo DHT with Chord in SWORD"; MAAN is natively
Chord-based).  This implementation provides:

* an ``bits``-bit circular ID space with key ownership by successor;
* per-node finger tables (``finger[i] = successor(id + 2**i)``),
  predecessor pointers and successor lists;
* iterative greedy lookup via closest-preceding-finger with per-hop
  accounting (the paper's "logical hops" metric; expected ``log2(n)/2``
  hops, cf. Theorem 4.7);
* clockwise *successor walks* over an ID arc — the primitive behind
  Mercury's and MAAN's range queries — with visited-node accounting;
* graceful node join/leave with key transfer and routing-state repair, and
  a ``stabilize_all`` pass modelling Chord's periodic stabilization.

The overlay keeps a sorted membership index which acts as the omniscient
oracle for building routing state (a *stabilized* network) and for
verifying that routed lookups land on the true successor.  Routing itself
only ever follows per-node links, so hop counts are honest.
"""

from __future__ import annotations

import bisect
import warnings
from collections import Counter
from collections.abc import Iterable
from typing import Any

from repro.overlay.arraystore import RingVector
from repro.overlay.idspace import IdSpace
from repro.overlay.node import LookupResult, OverlayNode, WalkResult, trace_fault_step
from repro.sim.durability import (
    DurabilityPolicy,
    SuccessorPlacement,
    decodable_level,
    successor_replication,
)
from repro.sim.faults import DEFAULT_POLICY, LookupPolicy, deliver_first
from repro.sim.maintenance import RepairProgress, repair_buckets
from repro.sim.network import SimulatedNetwork
from repro.utils.validation import require

__all__ = ["ChordNode", "ChordRing"]


class ChordNode(OverlayNode):
    """A Chord node: finger table, predecessor, successor list."""

    __slots__ = ("bits", "fingers", "predecessor", "successor_list")

    def __init__(self, node_id: int, bits: int) -> None:
        super().__init__(node_id)
        self.bits = bits
        #: finger[i] targets successor(id + 2**i); entries may go stale
        #: (dead) between stabilization rounds.
        self.fingers: list[ChordNode | None] = [None] * bits
        self.predecessor: ChordNode | None = None
        #: Chord's r-entry successor list for resilience; entry 0 is the
        #: immediate successor.
        self.successor_list: list[ChordNode] = []

    @property
    def node_id(self) -> int:
        """The node's ring identifier."""
        return self.uid  # type: ignore[return-value]

    @property
    def successor(self) -> "ChordNode | None":
        """Immediate successor (first live entry of the successor list)."""
        for candidate in self.successor_list:
            if candidate.alive:
                return candidate
        return None

    def outlinks(self) -> set[int]:
        """Distinct live neighbours this node maintains (Figure 3a metric)."""
        links: set[int] = set()
        for finger in self.fingers:
            if finger is not None and finger.alive:
                links.add(finger.node_id)
        for succ in self.successor_list:
            if succ.alive:
                links.add(succ.node_id)
        if self.predecessor is not None and self.predecessor.alive:
            links.add(self.predecessor.node_id)
        links.discard(self.node_id)
        return links


class ChordRing:
    """A simulated Chord overlay.

    Parameters
    ----------
    bits:
        Width of the ID space (the paper uses 11, so 2048 IDs).
    network:
        Shared hop/message accounting sink; a private one is created when
        omitted.
    successor_list_len:
        Length of each node's successor list (resilience under churn).

    Examples
    --------
    >>> ring = ChordRing(bits=4)
    >>> ring.build([1, 5, 9, 13])
    >>> ring.successor_of(6).node_id
    9
    >>> result = ring.lookup(ring.node(1), 6)
    >>> result.owner.node_id
    9
    """

    def __init__(
        self,
        bits: int,
        network: SimulatedNetwork | None = None,
        successor_list_len: int = 4,
        replication: int = 1,
        routing_cache: bool = True,
        durability: DurabilityPolicy | None = None,
    ) -> None:
        require(successor_list_len >= 1, "successor_list_len must be >= 1")
        self.space = IdSpace(bits)
        self.network = network if network is not None else SimulatedNetwork()
        self.successor_list_len = successor_list_len
        #: The durability policy governing where a key's copies/fragments
        #: live and when a piece still decodes.  The default —
        #: successor-list replication at ``replication`` copies — is
        #: byte-identical to the pre-policy hard-coded scheme: the owner
        #: plus ``replication - 1`` successors, any surviving copy readable.
        self.durability = (
            durability if durability is not None else successor_replication(replication)
        )
        #: Copies (fragments) kept per key.  With the default policy at 1
        #: behaviour matches the paper exactly; higher values make data
        #: survive *crash* failures (see :meth:`fail`).
        self.replication = self.durability.fragments
        self.durability.validate(self)
        #: Hot-path flag: the seed's successor placement short-circuits
        #: the policy dispatch in :meth:`replica_set` (store and lookup
        #: fall-back call it per key, so the indirection is measurable).
        self._native_placement = type(self.durability.placement) is SuccessorPlacement
        #: Requester behaviour under injected faults (retries, timeouts,
        #: failover).  Irrelevant — and never consulted — while the network
        #: has no active fault injector.
        self.lookup_policy: LookupPolicy = DEFAULT_POLICY
        self._nodes: dict[int, ChordNode] = {}
        #: The flat array-backed membership core (``repro.overlay.
        #: arraystore``); the node objects and their routing pointers are
        #: views over this sorted id vector.
        self._sorted_ids: RingVector = RingVector(max_id=self.space.size - 1)
        #: Derived-routing caches (pure memoisation, no observable effect):
        #: ``_succ_cache`` memoises :meth:`successor_of` and ``_cpf_cache``
        #: holds each node's deduplicated descending live-finger list for
        #: :meth:`_closest_preceding`.  Both are valid only for the current
        #: membership + alive flags, so every churn entry point
        #: (:meth:`join` / :meth:`leave` / :meth:`fail` / :meth:`build` —
        #: the methods ChurnGuard wraps at the service level) clears them,
        #: and :meth:`_refresh_fingers` (stabilize/refresh paths) drops the
        #: touched node's entry.  ``routing_cache=False`` disables the
        #: caches entirely (the equivalence tests diff the two modes).
        self.routing_cache = routing_cache
        self._succ_cache: dict[int, ChordNode] = {}
        self._cpf_cache: dict[int, list[ChordNode]] = {}
        #: Optional hop-level span tracer (:class:`repro.obs.spans.
        #: QueryTracer`).  ``None`` (the default) keeps the routing hot
        #: paths untouched beyond one ``is None`` dispatch per lookup/walk.
        self.tracer: Any | None = None

    def invalidate_routing_caches(self) -> None:
        """Drop all derived-routing caches (membership or liveness changed).

        Called automatically by every membership-changing entry point;
        public so external code that mutates routing state in place (e.g.
        tests staging stale fingers) can restore cache coherence.
        """
        self._succ_cache.clear()
        self._cpf_cache.clear()

    # ------------------------------------------------------------------
    # Membership / construction
    # ------------------------------------------------------------------
    @property
    def bits(self) -> int:
        """ID-space width."""
        return self.space.bits

    @property
    def num_nodes(self) -> int:
        """Current live population."""
        return len(self._sorted_ids)

    @property
    def node_ids(self) -> list[int]:
        """Live node IDs in ring order."""
        return self._sorted_ids.as_list()

    def node(self, node_id: int) -> ChordNode:
        """The live node with identifier ``node_id``."""
        return self._nodes[node_id]

    def nodes(self) -> Iterable[ChordNode]:
        """All live nodes, in ring order."""
        return (self._nodes[i] for i in self._sorted_ids)

    def build(self, node_ids: Iterable[int]) -> None:
        """Construct a stabilized ring over ``node_ids`` in one shot."""
        ids = sorted(set(self.space.wrap(i) for i in node_ids))
        require(bool(ids), "cannot build an empty ring")
        self._nodes = {i: ChordNode(i, self.bits) for i in ids}
        self._sorted_ids = RingVector(ids, max_id=self.space.size - 1)
        self.invalidate_routing_caches()
        for node in self._nodes.values():
            self._refresh_routing_state(node)

    def build_full(self) -> None:
        """Construct a ring occupying every identifier (the paper's 2048)."""
        self.build(range(self.space.size))

    # ------------------------------------------------------------------
    # Oracle helpers (membership index)
    # ------------------------------------------------------------------
    def successor_of(self, key: int) -> ChordNode:
        """The live node owning ``key`` (first node at or after it).

        Memoised per membership epoch: finger refreshes resolve the same
        ``id + 2**i`` targets from many nodes, so the cache turns the
        stabilization sweep's repeated bisects into dict hits.
        """
        require(bool(self._sorted_ids.data), "ring is empty")
        key = self.space.wrap(key)
        node = self._succ_cache.get(key)
        if node is None:
            ids = self._sorted_ids.data
            idx = bisect.bisect_left(ids, key)
            node = self._nodes[ids[idx if idx < len(ids) else 0]]
            if self.routing_cache:
                self._succ_cache[key] = node
        return node

    def predecessor_of(self, key: int) -> ChordNode:
        """The last live node strictly before ``key`` on the ring."""
        require(bool(self._sorted_ids.data), "ring is empty")
        key = self.space.wrap(key)
        ids = self._sorted_ids.data
        idx = bisect.bisect_left(ids, key) - 1
        return self._nodes[ids[idx]]

    def _successors_from(self, key: int, count: int) -> list[ChordNode]:
        """Up to ``count`` distinct live nodes clockwise from ``key``."""
        result: list[ChordNode] = []
        if not self._sorted_ids.data:
            return result
        ids = self._sorted_ids.data
        idx = bisect.bisect_left(ids, self.space.wrap(key))
        n = len(ids)
        for offset in range(min(count, n)):
            result.append(self._nodes[ids[(idx + offset) % n]])
        return result

    def _refresh_routing_state(self, node: ChordNode) -> None:
        """Point ``node``'s fingers/successors/predecessor at true targets."""
        self._refresh_fingers(node)
        self._refresh_successors(node)

    def _refresh_fingers(self, node: ChordNode) -> None:
        nid = node.node_id
        node.fingers = [
            self.successor_of(nid + (1 << i)) for i in range(self.bits)
        ]
        self._cpf_cache.pop(nid, None)

    def _refresh_successors(self, node: ChordNode) -> None:
        nid = node.node_id
        node.successor_list = [
            n for n in self._successors_from(nid + 1, self.successor_list_len)
            if n.node_id != nid
        ] or [node]
        pred = self.predecessor_of(nid)
        node.predecessor = pred if pred.node_id != nid else None

    # ------------------------------------------------------------------
    # Incremental maintenance (budgeted-scheduler support)
    # ------------------------------------------------------------------
    def stabilize_step(self, node: ChordNode) -> None:
        """One stabilization step: refresh ``node``'s successor list and
        predecessor pointer (Chord's ``stabilize``/``notify`` exchange).

        The unit of the maintenance scheduler's *stabilize* budget; a full
        :meth:`stabilize_all` pass is the budget-unlimited special case.
        Counts one maintenance message.
        """
        if not node.alive:
            return
        self._refresh_successors(node)
        self.network.count_maintenance(1)

    def refresh_routing_step(self, node: ChordNode) -> None:
        """One routing-refresh step: rebuild ``node``'s finger table
        (Chord's ``fix_fingers``).  The unit of the scheduler's *refresh*
        budget; counts one maintenance message."""
        if not node.alive:
            return
        self._refresh_fingers(node)
        self.network.count_maintenance(1)

    # ------------------------------------------------------------------
    # Routed lookup
    # ------------------------------------------------------------------
    @property
    def faults_active(self) -> bool:
        """Whether the shared network currently injects faults."""
        return self.network.faults_active

    def lookup(
        self, start: ChordNode, key: int, policy: LookupPolicy | None = None
    ) -> LookupResult:
        """Route from ``start`` to the owner of ``key`` using only links.

        Greedy closest-preceding-finger routing; stale (dead) fingers are
        skipped, and the successor list is the fallback, so lookups remain
        correct between stabilization rounds under graceful churn.

        With a fault injector active the route runs under ``policy``
        (default :attr:`lookup_policy`): every hop message can be lost,
        retries and successor/finger failover apply, the membership oracle
        is never consulted, and an unfinishable route returns a
        ``complete=False`` result instead of raising or silently
        succeeding.
        """
        key = self.space.wrap(key)
        if self.tracer is not None:
            return self._lookup_traced(start, key, policy)
        if self.faults_active:
            return self._lookup_faulty(start, key, policy or self.lookup_policy)
        return self._lookup_plain(start, key)

    def _lookup_plain(self, start: ChordNode, key: int) -> LookupResult:
        """The fault-free greedy route (``key`` already wrapped)."""
        cur = start
        hops = 0
        path = [cur.node_id]
        max_hops = 8 * self.bits + self.num_nodes  # termination guard
        size = self.space.size
        while hops < max_hops:
            if self._owns(cur, key):
                break
            succ = cur.successor
            if succ is None or succ is cur:
                break
            # Inlined in_interval(key, cur, succ] — this check runs once
            # per hop on the hottest path in the simulator.
            dist_key = (key - cur.node_id) % size
            dist_succ = (succ.node_id - cur.node_id) % size
            if dist_succ == 0 or 0 < dist_key <= dist_succ:
                # Key lies between us and our successor: successor owns it.
                cur = succ
            else:
                cur = self._closest_preceding(cur, key)
            hops += 1
            path.append(cur.node_id)
            self.network.count_hop()
        return LookupResult(owner=cur, hops=hops, path=tuple(path))

    def _lookup_traced(
        self, start: ChordNode, key: int, policy: LookupPolicy | None
    ) -> LookupResult:
        """Route with span tracing: identical result, plus one LOOKUP span
        with per-hop child spans.

        Fault-free routes are traced *post hoc* from the result path (the
        hot loop stays branch-free); the fault path emits hops and
        drop/retry/failover/timeout annotations live as they happen.
        """
        tracer = self.tracer
        with tracer.span("lookup", "chord.lookup", origin=start.node_id, key=key) as span:
            if self.faults_active:
                result = self._lookup_faulty(
                    start, key, policy or self.lookup_policy, tracer=tracer
                )
            else:
                result = self._lookup_plain(start, key)
                prev = start
                for nid in result.path[1:]:
                    node = self._nodes[nid]
                    tracer.hop(prev.node_id, nid, self.edge_kind(prev, node))
                    prev = node
            span.attrs.update(
                owner=result.owner.node_id, hops=result.hops,
                complete=result.complete, retries=result.retries,
                timed_out=result.timed_out,
            )
        return result

    def edge_kind(self, src: ChordNode, dst: ChordNode) -> str:
        """Which routing-table entry of ``src`` reaches ``dst``.

        Classification only (tracing annotations); priority mirrors the
        route's preference order: immediate successor, successor list,
        finger table, predecessor.
        """
        if dst is src.successor:
            return "successor"
        for entry in src.successor_list:
            if entry is dst:
                return "successor-list"
        for finger in src.fingers:
            if finger is dst:
                return "finger"
        if src.predecessor is dst:
            return "predecessor"
        return "unknown"

    def _lookup_faulty(
        self,
        start: ChordNode,
        key: int,
        policy: LookupPolicy,
        tracer: Any | None = None,
    ) -> LookupResult:
        """The fault-path route: local stop test, lossy hops, failover.

        Never touches the membership oracle — ownership is judged from the
        (possibly stale) predecessor pointer alone, and when no next hop
        answers within the policy's retry budget the lookup *fails* with
        ``complete=False``.
        """
        cur = start
        hops = 0
        retries = 0
        path = [cur.node_id]
        budget = policy.hop_budget or 8 * self.bits + self.num_nodes
        drops: list[tuple[int, int]] = []
        hedges: list[tuple[int, bool]] = []
        on_drop = None if tracer is None else (
            lambda dst_id, attempt: drops.append((dst_id, attempt))
        )
        on_hedge = None if tracer is None else (
            lambda dst_id, won: hedges.append((dst_id, won))
        )
        while True:
            if self._owns_local(cur, key):
                return LookupResult(
                    owner=cur, hops=hops, path=tuple(path), retries=retries
                )
            if hops >= budget:
                # Hop budget exhausted: the requester gives up.
                return LookupResult(
                    owner=cur, hops=hops, path=tuple(path),
                    complete=False, retries=retries,
                )
            candidates = self._hop_candidates(cur, key, policy)
            nxt, used, skipped = deliver_first(
                self.network, cur.node_id, candidates, policy, on_drop, on_hedge
            )
            retries += used
            if tracer is not None:
                advanced = nxt is not None and nxt is not cur
                trace_fault_step(
                    tracer,
                    cur.node_id,
                    nxt.node_id if advanced else None,
                    self.edge_kind(cur, nxt) if advanced else "",
                    used, skipped, drops, hedges,
                )
            if nxt is None or nxt is cur:
                # Every candidate timed out (or none exist): the route is
                # stuck and the lookup honestly fails.
                return LookupResult(
                    owner=cur, hops=hops, path=tuple(path),
                    complete=False, retries=retries, timed_out=True,
                )
            cur = nxt
            hops += 1
            path.append(cur.node_id)
            self.network.count_hop()

    def _owns(self, node: ChordNode, key: int) -> bool:
        pred = node.predecessor
        if pred is None or not pred.alive:
            # Degenerate/repairing state: fall back to the oracle check.
            return self.successor_of(key) is node
        # Inlined in_interval(key, pred, node] (per-hop stop test).
        size = self.space.size
        dist_node = (node.node_id - pred.node_id) % size
        dist_key = (key - pred.node_id) % size
        return dist_node == 0 or 0 < dist_key <= dist_node

    def _owns_local(self, node: ChordNode, key: int) -> bool:
        """Ownership judged purely from local state — no oracle.

        Uses the predecessor pointer even when it is stale (dead): that is
        exactly the information a real Chord node would have between
        stabilization rounds.  With no predecessor at all the node claims
        the key only when it believes it is alone on the ring.
        """
        pred = node.predecessor
        if pred is None:
            succ = node.successor
            return succ is None or succ is node
        return self.space.in_interval(key, pred.node_id, node.node_id)

    def _hop_candidates(
        self, cur: ChordNode, key: int, policy: LookupPolicy
    ) -> list[tuple[int, ChordNode]]:
        """Ordered next-hop preference list for the fault-path route.

        The first entry always matches the fault-free greedy choice; the
        rest are the policy-gated failover alternatives (further
        successor-list entries, lower fingers).
        """
        out: list[tuple[int, ChordNode]] = []
        seen = {cur.node_id}

        def add(candidate: ChordNode | None) -> None:
            if (
                candidate is not None
                and candidate.alive
                and candidate.node_id not in seen
            ):
                seen.add(candidate.node_id)
                out.append((candidate.node_id, candidate))

        succ = cur.successor
        if (
            succ is not None
            and succ is not cur
            and self.space.in_interval(key, cur.node_id, succ.node_id)
        ):
            entries = [n for n in cur.successor_list if n.alive]
            for entry in entries if policy.successor_failover else entries[:1]:
                add(entry)
            return out
        fingers = [
            finger
            for finger in reversed(cur.fingers)
            if finger is not None
            and finger.alive
            and finger is not cur
            and self.space.in_interval(
                finger.node_id, cur.node_id, key,
                closed_left=False, closed_right=False,
            )
        ]
        if not policy.finger_fallback:
            # Exactly the fault-free greedy choice, nothing else.
            add(fingers[0] if fingers else succ)
            return out
        for finger in fingers:
            add(finger)
        add(succ)
        return out

    def _closest_preceding(self, node: ChordNode, key: int) -> ChordNode:
        """Best live next hop: highest finger in ``(node, key)``.

        The per-node scan list — fingers in descending order, dead entries,
        self-references and duplicates dropped — is cached per membership
        epoch: finger tables hold ``bits`` entries but only ``O(log n)``
        distinct targets, and liveness cannot change between cache
        invalidations, so the cached scan returns exactly what the seed's
        full reversed scan returns.
        """
        fingers = self._cpf_cache.get(node.node_id)
        if fingers is None:
            fingers = []
            seen: set[int] = {node.node_id}
            for finger in reversed(node.fingers):
                if (
                    finger is not None
                    and finger.alive
                    and finger.node_id not in seen
                ):
                    seen.add(finger.node_id)
                    fingers.append(finger)
            if self.routing_cache:
                self._cpf_cache[node.node_id] = fingers
        # Inlined in_interval over the open interval (node, key); when
        # node == key the open interval is the whole ring minus the point.
        size = self.space.size
        nid = node.node_id
        span = (key - nid) % size or size
        for finger in fingers:
            if 0 < (finger.node_id - nid) % size < span:
                return finger
        succ = node.successor
        return succ if succ is not None else node

    # ------------------------------------------------------------------
    # Successor walk (range-query primitive)
    # ------------------------------------------------------------------
    def walk_arc(
        self,
        start: ChordNode,
        from_key: int,
        until_key: int,
        policy: LookupPolicy | None = None,
    ) -> WalkResult:
        """All live nodes owning keys on the clockwise arc — see
        :meth:`_walk_arc_impl`; with a tracer attached the walk is wrapped
        in a WALK span whose hop children are the successor steps."""
        if self.tracer is None:
            return self._walk_arc_impl(start, from_key, until_key, policy)
        tracer = self.tracer
        with tracer.span(
            "walk", "chord.walk",
            origin=start.node_id,
            from_key=self.space.wrap(from_key),
            until_key=self.space.wrap(until_key),
        ) as span:
            result = self._walk_arc_impl(start, from_key, until_key, policy)
            prev = result[0]
            for node in result[1:]:
                tracer.hop(prev.node_id, node.node_id, "successor")
                prev = node
            for _ in range(result.retries):
                tracer.event("retry")
            if result.truncated:
                tracer.event("truncated", reason=result.reason)
            if result.timed_out:
                tracer.event("timeout")
            span.attrs.update(
                visited=len(result), truncated=result.truncated,
                retries=result.retries,
            )
        return result

    def _walk_arc_impl(
        self,
        start: ChordNode,
        from_key: int,
        until_key: int,
        policy: LookupPolicy | None = None,
    ) -> WalkResult:
        """All live nodes owning keys on the clockwise arc
        ``[from_key, until_key]``, starting at ``start = successor(from_key)``.

        Used by Mercury and MAAN range queries: the query root forwards to
        its successor repeatedly while keys of the queried range remain
        ahead.  Every returned node is a *visited node* in the paper's
        sense; the caller accounts them.

        The stop test is span-based (how far along the arc the current
        node's sector reaches) rather than ownership-based, so arcs that
        wrap most of the ring — Theorem 4.10's worst case — are walked in
        full instead of terminating at the first node, whose sector can
        contain ``until_key`` *behind* the arc start.

        Returns a :class:`WalkResult` (a ``list`` of nodes): walks cut
        short by a dead successor chain, by the ring-corruption safety
        valve, or — under an active fault injector — by unreachable
        successors are marked ``truncated`` with a ``reason`` and counted
        in ``MessageStats.walk_truncations`` instead of silently returning
        a short visit list.
        """
        policy = policy or self.lookup_policy
        fault_mode = self.faults_active
        size = self.space.size
        span = (until_key - from_key) % size
        result = WalkResult([start])
        cur = start
        # cur covers keys up to cur.node_id; continue while that falls
        # short of the arc end (inlined clockwise_distance — one check
        # per visited node on the range-query hot path).
        while (cur.node_id - from_key) % size < span:
            if fault_mode:
                nxt, skipped = self._walk_step_faulty(cur, policy, result)
                if nxt is None:
                    self._truncate_walk(result, "unreachable successor chain")
                    result.timed_out = True
                    break
                if skipped:
                    # Failed over past a live node without checking its
                    # directory — the visit list has a hole in the arc.
                    self._truncate_walk(
                        result, "failed over past unreachable successor"
                    )
            else:
                nxt = cur.successor
                if nxt is None:
                    self._truncate_walk(result, "dead successor chain")
                    break
            if nxt is start:
                break
            cur = nxt
            result.append(cur)
            if len(result) > self.num_nodes:  # safety: ring corrupted
                self._truncate_walk(result, "ring corruption safety valve")
                warnings.warn(
                    "walk_arc visited more nodes than the ring holds; "
                    "successor links are corrupted",
                    RuntimeWarning,
                    stacklevel=2,
                )
                break
        return result

    def _walk_step_faulty(
        self, cur: ChordNode, policy: LookupPolicy, result: WalkResult
    ) -> tuple[ChordNode | None, int]:
        """One lossy walk step: deliver to the nearest reachable successor."""
        entries: list[tuple[int, ChordNode]] = []
        seen = {cur.node_id}
        for entry in cur.successor_list:
            if entry.alive and entry.node_id not in seen:
                seen.add(entry.node_id)
                entries.append((entry.node_id, entry))
        if not policy.successor_failover:
            entries = entries[:1]
        nxt, retries, skipped = deliver_first(
            self.network, cur.node_id, entries, policy
        )
        result.retries += retries
        return nxt, skipped

    def _truncate_walk(self, result: WalkResult, reason: str) -> None:
        """Flag ``result`` truncated (first reason wins) and count it."""
        if not result.truncated:
            result.truncated = True
            result.reason = reason
        self.network.count_walk_truncation()

    # ------------------------------------------------------------------
    # Key storage (routed through the overlay)
    # ------------------------------------------------------------------
    def native_holders(self, key_id: int, count: int) -> list[ChordNode]:
        """``count`` distinct live nodes clockwise from ``key_id`` — the
        successor-list holders :class:`~repro.sim.durability.
        SuccessorPlacement` delegates to."""
        return self._successors_from(key_id, count)

    def replica_set(self, key: int) -> list[ChordNode]:
        """The nodes that should hold ``key`` under the durability policy
        (default: its owner plus the next ``replication - 1`` live
        successors)."""
        if self._native_placement:
            return self._successors_from(key, self.replication)
        return self.durability.holders(self, key)

    def store(self, namespace: str, key: int, item: Any) -> ChordNode:
        """Place ``item`` at the owner of ``key`` (oracle placement).

        With ``replication > 1`` the owner pushes copies to its successors
        (counted as maintenance messages).
        """
        key = self.space.wrap(key)
        replicas = self.replica_set(key)
        for holder in replicas:
            holder.store(namespace, key, item)
        if len(replicas) > 1:
            self.network.count_maintenance(len(replicas) - 1)
        return replicas[0]

    def routed_store(self, start: ChordNode, namespace: str, key: int, item: Any) -> LookupResult:
        """Insert via a routed lookup from ``start`` (counts hops)."""
        result = self.lookup(start, key)
        key = self.space.wrap(key)
        result.owner.store(namespace, key, item)
        for holder in self.replica_set(key)[1:]:
            if holder is not result.owner:
                holder.store(namespace, key, item)
                self.network.count_maintenance(1)
        return result

    def discard(self, namespace: str, key: int, item: Any) -> int:
        """Remove ``item``'s copies from the key's replica set.

        Returns the number of copies removed.  Used by lease expiry
        (``repro.core.refresh``): a provider's stale report is withdrawn
        from the owner and every replica.
        """
        key = self.space.wrap(key)
        removed = 0
        for holder in self.replica_set(key):
            if holder.remove_item(namespace, key, item):
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def join(self, node_id: int) -> ChordNode:
        """A new node joins: takes over its key sector from its successor.

        Models Chord's join: the newcomer builds correct routing state, its
        neighbours learn about it immediately (predecessor/successor
        pointers and successor lists), and other nodes' fingers are
        refreshed lazily by :meth:`stabilize_all`.
        """
        node_id = self.space.wrap(node_id)
        require(node_id not in self._nodes, f"node {node_id} already present")
        had_members = bool(self._sorted_ids)
        node = ChordNode(node_id, self.bits)
        self._sorted_ids.add(node_id)
        self._nodes[node_id] = node
        self.invalidate_routing_caches()
        self._refresh_routing_state(node)
        self.network.count_maintenance(self.bits)  # building its state

        if had_members:
            succ = self.successor_of(node_id + 1)
            # Transfer the keys the newcomer is now responsible for.
            if succ is not node:
                moved = 0
                for namespace, key_id, item in succ.stored_entries():
                    if self.successor_of(key_id) is node:
                        succ.remove_items(namespace, key_id)  # removes bucket
                        node.store(namespace, key_id, item)
                        moved += 1
                if moved:
                    self.network.count_maintenance(1)
            self._repair_neighbourhood(node_id)
        return node

    def leave(self, node_id: int) -> None:
        """Graceful departure: keys move to the successor, neighbours repair.

        Matches the paper's churn model, in which "there were no failures in
        all test cases" — departures hand their state off before leaving.
        """
        require(len(self._sorted_ids) > 1, "cannot remove the last ring node")
        node = self._nodes.pop(node_id)
        self._sorted_ids.remove(node_id)
        node.alive = False
        self.invalidate_routing_caches()
        successor = self.successor_of(node_id)
        outgoing: dict[tuple[str, int], Counter] = {}
        for namespace, key_id, item in node.stored_entries():
            outgoing.setdefault((namespace, key_id), Counter())[item] += 1
        for (namespace, key_id), pieces in outgoing.items():
            # With replication the successor (replica #2) usually holds
            # copies already; top up to the departing node's count instead
            # of duplicating, so identical items stay distinct pieces.
            held = Counter(successor.items_at(namespace, key_id))
            for item, count in pieces.items():
                for _ in range(count - held[item]):
                    successor.store(namespace, key_id, item)
        node.clear_storage()
        self.network.count_maintenance(2)  # departure notifications
        self._repair_neighbourhood(node_id)

    def fail(self, node_id: int) -> None:
        """Crash failure: the node vanishes *without* handing off its keys.

        Keys whose only copy lived on the crashed node are lost (the
        ``replication=1`` configuration); with ``replication >= 2`` the
        surviving successor-list replicas keep every key readable, and the
        next :meth:`repair_replication` restores the full replica count.
        """
        require(len(self._sorted_ids) > 1, "cannot remove the last ring node")
        node = self._nodes.pop(node_id)
        self._sorted_ids.remove(node_id)
        node.alive = False
        self.invalidate_routing_caches()
        node.clear_storage()  # the crashed node's memory is gone
        # Neighbours detect the failure via timeouts and repair locally.
        self._repair_neighbourhood(node_id)

    def repair_replication(self) -> int:
        """Restore every key to exactly its replica set; returns copies moved.

        Models the periodic replica-maintenance pass: after
        joins/leaves/failures, each surviving piece is re-homed so every
        member of the policy's holder set carries it (and nobody else
        does).  Surviving per-holder counts reduce through
        :func:`~repro.sim.durability.decodable_level` — at the default
        decode threshold of 1 that is the seed's ``max`` merge (a node's
        own copy count is a piece's true multiplicity; replicas mirror
        it, so identical items stay distinct pieces without replica
        copies multiplying back in), while an erasure policy re-homes
        only pieces with at least ``k`` surviving fragments and *purges*
        undecodable fragments rather than resurrecting lost data.
        """
        threshold = self.durability.threshold
        surviving: dict[tuple[str, int], dict[Any, list[int]]] = {}
        for node in list(self.nodes()):
            held: dict[tuple[str, int], Counter] = {}
            for namespace, key_id, item in node.stored_entries():
                held.setdefault((namespace, key_id), Counter())[item] += 1
            node.clear_storage()
            for bucket_key, pieces in held.items():
                bucket = surviving.setdefault(bucket_key, {})
                for item, count in pieces.items():
                    bucket.setdefault(item, []).append(count)
        moved = 0
        for (namespace, key_id), pieces in surviving.items():
            replicas = self.replica_set(key_id)
            for item, counts in pieces.items():
                level = decodable_level(counts, threshold)
                if level == 0:
                    continue
                for holder in replicas:
                    for _ in range(level):
                        holder.store(namespace, key_id, item)
                    moved += level
        if moved:
            self.network.count_maintenance(moved)
        return moved

    def repair_replication_step(
        self,
        budget: int | None = None,
        after: tuple[str, int] | None = None,
    ) -> RepairProgress:
        """Anti-entropy replica repair of up to ``budget`` key buckets.

        Buckets are visited in sorted ``(namespace, key)`` order starting
        strictly after ``after`` (``None`` starts from the beginning); each
        repaired bucket ends up exactly on its replica set, like one key's
        worth of :meth:`repair_replication`.  ``budget=None`` repairs every
        bucket in one call.  Returns a
        :class:`~repro.sim.maintenance.RepairProgress` whose ``next_after``
        is the resume cursor (``None`` once the sweep wrapped).
        """
        return repair_buckets(
            self, self.replica_set, budget, after, policy=self.durability
        )

    def _repair_neighbourhood(self, around_id: int) -> None:
        """Refresh routing state of nodes adjacent to a membership change."""
        for neighbour in self._successors_from(around_id, self.successor_list_len + 1):
            self._refresh_routing_state(neighbour)
            self.network.count_maintenance(1)
        pred = self.predecessor_of(around_id)
        self._refresh_routing_state(pred)
        self.network.count_maintenance(1)

    def stabilize_all(self) -> None:
        """Periodic stabilization: every node re-derives its routing state."""
        for node in self._nodes.values():
            self._refresh_routing_state(node)
            self.network.count_maintenance(1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def outlink_counts(self) -> list[int]:
        """Per-node count of distinct live neighbours (Figure 3a)."""
        return [len(node.outlinks()) for node in self.nodes()]

    def directory_sizes(self, namespace: str | None = None) -> list[int]:
        """Per-node directory sizes (Figure 3b–d)."""
        return [node.directory_size(namespace) for node in self.nodes()]

    def check_ring_invariants(self) -> None:
        """Raise AssertionError unless successor/predecessor links form the
        unique ring over live nodes — used by tests and after churn storms.
        """
        ids = self._sorted_ids
        n = len(ids)
        for idx, nid in enumerate(ids):
            node = self._nodes[nid]
            expected_succ = self._nodes[ids[(idx + 1) % n]]
            succ = node.successor
            if n == 1:
                continue
            assert succ is expected_succ, (
                f"node {nid}: successor {succ and succ.node_id} != {expected_succ.node_id}"
            )
            expected_pred = self._nodes[ids[(idx - 1) % n]]
            assert node.predecessor is expected_pred, (
                f"node {nid}: predecessor mismatch"
            )
