"""Single-hop DHT ring (D1HT-style full-membership routing).

Monnerat & Amorim's D1HT ("An effective single-hop distributed hash table")
shows that a DHT can answer lookups in **one hop** if every node keeps the
full membership table, at the price of disseminating every join/leave to
every node.  :class:`SingleHopRing` reproduces that routing tier on top of
the existing :class:`~repro.overlay.chord.ChordRing` machinery so the four
discovery systems run on it unchanged:

* **Ground truth** stays in the array-backed membership core
  (``RingVector``); what is modelled per node is *staleness* — the set of
  membership events a node has not yet learned (:attr:`_pending`).  This
  keeps memory at O(n + outstanding events) instead of the O(n²) of
  materialising every node's table.
* **Dissemination rides the existing maintenance machinery**: each
  :meth:`stabilize_step` (the unit of the scheduler's stabilize budget)
  delivers a node's outstanding event notifications — one maintenance
  message per event, EDRA's quiescent cost — and an unbudgeted
  :meth:`stabilize_all` flushes everything.  Nodes adjacent to a churn
  event learn about it immediately through the inherited neighbourhood
  repair, exactly like Chord.
* **Misroute-and-correct fallback**: a lookup jumps straight to the
  *believed* owner under the requester's (possibly stale) view.  A probe
  to a departed node times out, counts as a retry and teaches the
  requester the departure; landing on a non-owner (a join it missed)
  costs one corrective hop via the neighbour links.  Lookups therefore
  never fail silently under staleness — they pay extra hops/retries,
  which is precisely the axis the tradeoff experiment measures.

With a fully disseminated table every fault-free lookup takes exactly one
hop (zero when the requester owns the key) — the "1 hop means 1 hop"
Hypothesis property pins this, hop by hop, through the trace oracles.
"""

from __future__ import annotations

import bisect

from repro.overlay.chord import ChordNode, ChordRing
from repro.overlay.node import LookupResult
from repro.sim.faults import LookupPolicy

__all__ = ["SingleHopRing"]


class SingleHopRing(ChordRing):
    """A Chord-compatible ring that routes via a full membership table.

    Examples
    --------
    >>> ring = SingleHopRing(bits=4)
    >>> ring.build([1, 5, 9, 13])
    >>> ring.lookup(ring.node(1), 6).hops
    1
    """

    def __init__(self, bits: int, **kwargs) -> None:
        #: node_id -> {subject_id: True for an unlearned join, False for an
        #: unlearned leave/fail}.  Empty dicts mean the node's membership
        #: view matches ground truth.
        self._pending: dict[int, dict[int, bool]] = {}
        super().__init__(bits, **kwargs)

    # ------------------------------------------------------------------
    # Membership / staleness bookkeeping
    # ------------------------------------------------------------------
    def build(self, node_ids) -> None:
        self._pending = {}
        super().build(node_ids)
        self._pending = {nid: {} for nid in self._nodes}

    def _refresh_routing_state(self, node: ChordNode) -> None:
        # Re-deriving a node's routing state means it has caught up with
        # every membership event — its pending set empties.  This makes
        # stabilize_all and the inherited neighbourhood repair flush
        # staleness for free.
        super()._refresh_routing_state(node)
        pending = self._pending.get(node.node_id)
        if pending:
            pending.clear()

    def _record_event(self, subject: int, is_join: bool) -> None:
        """Queue one membership event for every node that must learn it.

        A join and a later leave of the same subject cancel (and vice
        versa): a node that learned neither ends up believing exactly what
        is true about that subject.
        """
        for nid, deltas in self._pending.items():
            if nid == subject:
                continue
            prev = deltas.get(subject)
            if prev is None:
                deltas[subject] = is_join
            elif prev != is_join:
                del deltas[subject]

    def join(self, node_id: int) -> ChordNode:
        node_id = self.space.wrap(node_id)
        if node_id in self._nodes:
            return super().join(node_id)  # raises the canonical error
        self._record_event(node_id, True)
        node = super().join(node_id)
        self._pending[node_id] = {}
        # The joiner downloads the full membership table — the O(n) entry
        # cost that buys O(1) lookups (D1HT Section 3).
        if self.num_nodes > 1:
            self.network.count_maintenance(self.num_nodes - 1)
        return node

    def leave(self, node_id: int) -> None:
        if node_id in self._nodes and len(self._sorted_ids) > 1:
            self._pending.pop(node_id, None)
            self._record_event(node_id, False)
        super().leave(node_id)

    def fail(self, node_id: int) -> None:
        if node_id in self._nodes and len(self._sorted_ids) > 1:
            self._pending.pop(node_id, None)
            self._record_event(node_id, False)
        super().fail(node_id)

    # ------------------------------------------------------------------
    # Maintenance: dissemination through the budget machinery
    # ------------------------------------------------------------------
    def stabilize_step(self, node: ChordNode) -> None:
        """One maintenance quantum: the successor exchange plus delivery of
        every membership event ``node`` had not yet learned (one
        maintenance message per event)."""
        if not node.alive:
            return
        deltas = self._pending.get(node.node_id)
        extra = len(deltas) if deltas else 0
        super().stabilize_step(node)
        if extra:
            self.network.count_maintenance(extra)
            deltas.clear()

    def stabilize_all(self) -> None:
        extra = sum(len(d) for d in self._pending.values())
        if extra:
            self.network.count_maintenance(extra)
        super().stabilize_all()  # clears pending via _refresh_routing_state

    # ------------------------------------------------------------------
    # Single-hop routing
    # ------------------------------------------------------------------
    def _believed_owner_id(self, node_id: int, key: int) -> int:
        """The owner of ``key`` under ``node_id``'s membership view.

        The view is ground truth corrected backwards by the node's
        unlearned events: joins it missed are invisible, departures it
        missed still look alive.
        """
        deltas = self._pending.get(node_id)
        if not deltas:
            return self.successor_of(key).node_id
        size = self.space.size
        ids = self._sorted_ids.data
        idx = bisect.bisect_left(ids, key)
        n = len(ids)
        best = None
        best_dist = size + 1
        for off in range(n):
            cand = ids[(idx + off) % n]
            if deltas.get(cand) is True:
                continue  # a join this node has not learned about
            best = cand
            best_dist = (cand - key) % size
            break
        for subject, is_join in deltas.items():
            if is_join:
                continue
            dist = (subject - key) % size
            if dist < best_dist:
                best, best_dist = subject, dist
        return best if best is not None else node_id

    def _lookup_plain(self, start: ChordNode, key: int) -> LookupResult:
        """Jump to the believed owner; correct misroutes via neighbours.

        Probes to departed nodes the requester still believes in are
        *retries* (a timeout observed, the departure learned), not hops —
        the path only ever contains live nodes, which keeps the post-hoc
        hop tracing and the ``hops == len(path) - 1`` law intact.
        """
        cur = start
        hops = 0
        retries = 0
        path = [cur.node_id]
        max_hops = 8 * self.bits + self.num_nodes  # termination guard
        while hops < max_hops:
            if self._owns(cur, key):
                break
            deltas = self._pending.get(cur.node_id)
            target = self._believed_owner_id(cur.node_id, key)
            while target not in self._nodes:
                # Probe timed out: the believed owner is gone.  Learn the
                # departure opportunistically and try the next candidate.
                retries += 1
                self.network.count_retry()
                if deltas:
                    deltas.pop(target, None)
                target = self._believed_owner_id(cur.node_id, key)
            if target == cur.node_id:
                # Degenerate staleness: fall back to a successor step.
                nxt = cur.successor
                if nxt is None or nxt is cur:
                    break
            else:
                nxt = self._nodes[target]
            cur = nxt
            hops += 1
            path.append(cur.node_id)
            self.network.count_hop()
        return LookupResult(owner=cur, hops=hops, path=tuple(path), retries=retries)

    def edge_kind(self, src: ChordNode, dst: ChordNode) -> str:
        """Single-hop attribution: any non-neighbour hop rides the
        membership table."""
        kind = super().edge_kind(src, dst)
        if kind in ("finger", "unknown"):
            return "membership"
        return kind

    def _hop_candidates(
        self, cur: ChordNode, key: int, policy: LookupPolicy
    ) -> list[tuple[int, ChordNode]]:
        """Fault-path preference: the believed owner first (when live),
        then the inherited Chord failover alternatives."""
        out = super()._hop_candidates(cur, key, policy)
        target = self._believed_owner_id(cur.node_id, key)
        node = self._nodes.get(target)
        if node is not None and node is not cur and node.alive:
            out = [(target, node)] + [(i, n) for i, n in out if i != target]
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def outlink_counts(self) -> list[int]:
        """Per-node believed-membership degree: nearly ``n - 1`` links each
        — the memory/maintenance price of single-hop routing."""
        n = self.num_nodes
        counts = []
        for nid in self._sorted_ids:
            deltas = self._pending.get(nid) or {}
            unlearned_joins = sum(1 for is_join in deltas.values() if is_join)
            unlearned_leaves = len(deltas) - unlearned_joins
            counts.append(max(0, n - 1 - unlearned_joins + unlearned_leaves))
        return counts

    def pending_events(self) -> int:
        """Total outstanding (node, event) notifications — 0 means every
        node's view matches ground truth (fully disseminated)."""
        return sum(len(d) for d in self._pending.values())
