"""Flat array-backed ring state — the struct-of-arrays simulation core.

The paper stops every figure at n = 2048 because an object-per-node,
dict-routed simulation thrashes long before the 10^5–10^6-peer regime the
single-hop and ReCord literature argues about.  This module breaks that
ceiling in two layers:

* :class:`RingVector` — a sorted, machine-width flat vector of ring
  identifiers (``array('q')``).  It is the membership index *both* object
  overlays now keep: :class:`~repro.overlay.chord.ChordRing` and
  :class:`~repro.overlay.cycloid.CycloidOverlay` are thin views over it
  (their node objects and routing pointers are materialised views of this
  vector), so the invariant, differential-replay, trace and durability
  harnesses all pass unchanged while the sorted index itself stops being a
  list of boxed Python ints.

* :class:`CompactChordRing` — the full struct-of-arrays representation
  used by the ``repro scale`` experiment: node state is *only* flat
  integer arrays (sorted id vector, implicit successor/predecessor by
  index adjacency, an ``(n, bits)`` finger table of node indices) plus
  :class:`IndexedDirectory` for index-keyed directory storage.  Routing
  replays :meth:`ChordRing._lookup_plain` hop for hop (the equivalence is
  pinned by tests), and churn accounting mirrors the object ring's
  maintenance-message formulas, so large-n figures are directly
  comparable with the paper-scale ones.

View contract / cache invalidation
----------------------------------
``RingVector`` is the single source of truth for membership; everything
derived from it — the object overlays' routing pointers and memo caches,
``CompactChordRing``'s finger table, ``IndexedDirectory`` placements — is
a cache keyed on the membership epoch.  Mutating the vector (``add`` /
``remove``) therefore invalidates: the object overlays already funnel
every mutation through their churn entry points (which flush their
caches), and ``CompactChordRing`` marks its finger table dirty and
rebuilds it lazily before the next routed operation (the stabilized-ring
semantics of ``build`` + ``stabilize_all``).  Directories are placed by
node *index*, so a membership change invalidates placements too;
:meth:`IndexedDirectory.place` recomputes from keys, which the scale
experiment does after churn settles.
"""

from __future__ import annotations

import bisect
from array import array
from collections.abc import Iterable, Iterator

import numpy as np

from repro.utils.validation import require

__all__ = ["CompactChordRing", "IndexedDirectory", "RingVector"]

#: Largest identifier ``array('q')`` (signed 64-bit) can hold.
_INT64_MAX = (1 << 63) - 1


class RingVector:
    """A sorted flat vector of integer ring identifiers.

    Backed by ``array('q')`` — one machine word per id, no boxed-int
    objects, cache-friendly bisects — with a transparent plain-list
    fallback for id spaces beyond 63 bits (:class:`~repro.overlay.idspace.
    IdSpace` allows up to 160).  The sequence protocol matches a sorted
    list, so ``bisect.bisect_*`` and :func:`~repro.overlay.idspace.
    closest_on_ring` work on it directly.

    Examples
    --------
    >>> v = RingVector([9, 1, 5])
    >>> list(v), len(v), 5 in v, 4 in v
    ([1, 5, 9], 3, True, False)
    >>> v.add(4); v.remove(9); list(v)
    [1, 4, 5]
    >>> v.successor_index(6)  # wraps past the end
    0
    """

    #: The raw backing storage (sorted), exposed for hot-path reads: C
    #: bisect probes a ``RingVector`` through Python ``__getitem__`` calls
    #: (~5x a plain list), so hot callers bisect ``v.data`` directly and
    #: stay in C.  A slot attribute, not a property — the descriptor read
    #: itself must be free on these paths.  Treat it as read-only; mutate
    #: through :meth:`add` / :meth:`remove`.
    __slots__ = ("data",)

    def __init__(self, ids: Iterable[int] = (), *, max_id: int = _INT64_MAX) -> None:
        ordered = sorted(ids)
        if max_id <= _INT64_MAX and (not ordered or ordered[-1] <= _INT64_MAX):
            self.data: array | list[int] = array("q", ordered)
        else:  # beyond int64: keep Python ints
            self.data = ordered

    # -- sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    def __bool__(self) -> bool:
        return bool(self.data)

    def __getitem__(self, index):
        return self.data[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self.data)

    def __contains__(self, value: int) -> bool:
        idx = bisect.bisect_left(self.data, value)
        return idx < len(self.data) and self.data[idx] == value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RingVector):
            return list(self.data) == list(other.data)
        if isinstance(other, (list, tuple)):
            return list(self.data) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingVector({list(self.data)!r})"

    # -- sorted-set mutation ----------------------------------------------
    def add(self, value: int) -> None:
        """Insert ``value`` keeping the vector sorted."""
        bisect.insort(self.data, value)

    def remove(self, value: int) -> None:
        """Remove ``value`` (which must be present)."""
        idx = bisect.bisect_left(self.data, value)
        del self.data[idx]

    # -- ring queries ------------------------------------------------------
    def bisect_left(self, value: int) -> int:
        """``bisect.bisect_left`` over the vector."""
        return bisect.bisect_left(self.data, value)

    def bisect_right(self, value: int) -> int:
        """``bisect.bisect_right`` over the vector."""
        return bisect.bisect_right(self.data, value)

    def successor_index(self, key: int) -> int:
        """Index of the first id at or after ``key``, wrapping to 0."""
        idx = bisect.bisect_left(self.data, key)
        return 0 if idx == len(self.data) else idx

    def as_list(self) -> list[int]:
        """The ids as a plain list (ring order)."""
        return list(self.data)

    def to_numpy(self) -> np.ndarray:
        """The ids as a sorted ``int64`` numpy vector (bulk consumers)."""
        return np.frombuffer(self.data, dtype=np.int64).copy() if isinstance(
            self.data, array
        ) and len(self.data) else np.asarray(list(self.data), dtype=np.int64)


class IndexedDirectory:
    """Index-keyed directory storage for the compact core.

    Per-node directory load is a counts vector indexed by node *index*
    (position in the sorted id vector), one vector per namespace — the
    struct-of-arrays replacement for per-node ``dict`` stores.  Placement
    is vectorised: a batch of key ids maps to owner indices with one
    ``searchsorted`` and accumulates with one ``bincount``.
    """

    def __init__(self, ring: "CompactChordRing") -> None:
        self._ring = ring
        self._counts: dict[str, np.ndarray] = {}

    def place(self, namespace: str, keys: np.ndarray) -> None:
        """Store one piece per key id in ``keys`` at each key's owner."""
        owners = self._ring.owner_indices(keys)
        counts = np.bincount(owners, minlength=self._ring.num_nodes)
        existing = self._counts.get(namespace)
        if existing is None:
            self._counts[namespace] = counts.astype(np.int64)
        else:
            existing += counts

    def sizes(self, namespace: str | None = None) -> np.ndarray:
        """Per-node directory sizes (the Figure 3 metric), by node index."""
        n = self._ring.num_nodes
        if namespace is not None:
            counts = self._counts.get(namespace)
            return counts.copy() if counts is not None else np.zeros(n, np.int64)
        total = np.zeros(n, np.int64)
        for counts in self._counts.values():
            total += counts
        return total


class CompactChordRing:
    """A stabilized Chord ring as flat integer arrays — no node objects.

    State is exactly three arrays: the sorted id vector, the ``(n, bits)``
    finger table of node indices (``fingers[i, j]`` = index of
    ``successor(ids[i] + 2**j)``) and the per-namespace directory counts
    in :class:`IndexedDirectory`.  Successor and predecessor are index
    adjacency (``i ± 1 mod n``) — the ring is always in its stabilized
    state, which is the regime every paper figure measures.

    Routing replays :meth:`ChordRing._lookup_plain` exactly — same stop
    test, same greedy closest-preceding-finger scan, same termination
    guard — so measured hop counts at any ``n`` extend the paper's Figure
    4 curves rather than approximating them.  Churn (:meth:`join` /
    :meth:`leave` / :meth:`fail`) mutates the id vector, counts the same
    maintenance messages the object ring counts, and lazily rebuilds the
    finger table before the next routed operation.

    Examples
    --------
    >>> ring = CompactChordRing(bits=4, ids=[1, 5, 9, 13])
    >>> int(ring.ids[ring.owner_index(6)])
    9
    >>> owner, hops = ring.lookup(ring.index_of(1), 6)
    >>> int(ring.ids[owner])
    9
    """

    def __init__(
        self,
        bits: int,
        ids: Iterable[int],
        *,
        successor_list_len: int = 4,
    ) -> None:
        require(1 <= bits <= 62, f"compact core needs bits in [1, 62], got {bits}")
        require(successor_list_len >= 1, "successor_list_len must be >= 1")
        self.bits = bits
        self.size = 1 << bits
        self.successor_list_len = successor_list_len
        unique = np.unique(np.asarray(list(ids), dtype=np.int64) % self.size)
        require(unique.size > 0, "cannot build an empty ring")
        self.ids: np.ndarray = unique  # sorted ascending
        self.fingers: np.ndarray | None = None  # built lazily, (n, bits)
        self._fingers_dirty = True
        #: Maintenance-message accounting (same formulas as the object
        #: ring's ``count_maintenance`` call sites).
        self.maintenance_messages = 0
        self.routing_hops = 0
        self.directory = IndexedDirectory(self)

    @classmethod
    def sampled(
        cls, num_nodes: int, *, bits: int | None = None, seed: int = 0
    ) -> "CompactChordRing":
        """A ring of ``num_nodes`` ids sampled uniformly without replacement.

        ``bits`` defaults to ``ceil(log2(n)) + 4`` — a 16x-sparse id space,
        enough headroom that collisions stay negligible while the finger
        table stays ``O(n log n)`` ints.
        """
        require(num_nodes >= 1, "num_nodes must be >= 1")
        if bits is None:
            bits = max(1, int(num_nodes - 1).bit_length()) + 4
        rng = np.random.default_rng(seed)
        size = 1 << bits
        # Sampling without replacement from 2**bits directly would
        # materialise the whole space; sample with replacement and top up
        # the (rare, sparse-space) collisions instead.
        ids = np.unique(rng.integers(size, size=num_nodes, dtype=np.int64))
        while ids.size < num_nodes:
            extra = rng.integers(size, size=num_nodes - ids.size, dtype=np.int64)
            ids = np.unique(np.concatenate([ids, extra]))
        return cls(bits, ids)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Current population."""
        return int(self.ids.size)

    def index_of(self, node_id: int) -> int:
        """Index of the node with identifier ``node_id``."""
        idx = int(np.searchsorted(self.ids, node_id))
        require(
            idx < self.ids.size and int(self.ids[idx]) == node_id,
            f"node {node_id} not present",
        )
        return idx

    def owner_index(self, key: int) -> int:
        """Index of the node owning ``key`` (first id at or after it)."""
        idx = int(np.searchsorted(self.ids, key % self.size))
        return 0 if idx == self.ids.size else idx

    def owner_indices(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner_index` over a key batch."""
        idx = np.searchsorted(self.ids, np.asarray(keys, dtype=np.int64) % self.size)
        return idx % self.ids.size

    # ------------------------------------------------------------------
    # Finger table
    # ------------------------------------------------------------------
    def build_fingers(self) -> None:
        """(Re)build the full ``(n, bits)`` finger table, column-wise.

        Column ``j`` is one vectorised successor resolution of every
        node's ``id + 2**j`` target — the array equivalent of a global
        ``stabilize_all`` + ``fix_fingers`` sweep.
        """
        n = self.ids.size
        dtype = np.int32 if n < (1 << 31) else np.int64
        fingers = np.empty((n, self.bits), dtype=dtype)
        for j in range(self.bits):
            targets = (self.ids + (1 << j)) % self.size
            idx = np.searchsorted(self.ids, targets)
            fingers[:, j] = idx % n
        self.fingers = fingers
        self._fingers_dirty = False

    def _ensure_fingers(self) -> None:
        if self._fingers_dirty or self.fingers is None:
            self.build_fingers()

    def state_bytes(self) -> int:
        """Bytes held by the flat ring state (id vector + finger table)."""
        self._ensure_fingers()
        assert self.fingers is not None
        return int(self.ids.nbytes + self.fingers.nbytes)

    # ------------------------------------------------------------------
    # Routing (mirrors ChordRing._lookup_plain / _closest_preceding)
    # ------------------------------------------------------------------
    def lookup(self, start_index: int, key: int) -> tuple[int, int]:
        """Greedy closest-preceding-finger route; returns (owner_index, hops).

        Hop-for-hop identical to the object ring's fault-free lookup on
        the same (stabilized) membership — the equivalence tests diff the
        two implementations query by query.
        """
        self._ensure_fingers()
        ids = self.ids
        fingers = self.fingers
        n = ids.size
        size = self.size
        key %= size
        cur = start_index
        hops = 0
        max_hops = 8 * self.bits + n  # termination guard (as ChordRing)
        while hops < max_hops:
            cur_id = int(ids[cur])
            pred_id = int(ids[cur - 1]) if cur else int(ids[n - 1])
            # Stop test: key in (pred, cur] — the stabilized _owns check.
            dist_cur = (cur_id - pred_id) % size
            if dist_cur == 0 or 0 < (key - pred_id) % size <= dist_cur:
                break
            succ = cur + 1 if cur + 1 < n else 0
            succ_id = int(ids[succ])
            dist_key = (key - cur_id) % size
            dist_succ = (succ_id - cur_id) % size
            if dist_succ == 0 or 0 < dist_key <= dist_succ:
                cur = succ
            else:
                # Closest preceding finger: highest finger in (cur, key).
                span = dist_key or size
                nxt = succ
                for f in fingers[cur, ::-1].tolist():
                    if f != cur and 0 < (int(ids[f]) - cur_id) % size < span:
                        nxt = f
                        break
                cur = nxt
            hops += 1
        self.routing_hops += hops
        return cur, hops

    def measure_lookups(
        self, num_queries: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Hop counts of ``num_queries`` uniform (start, key) lookups."""
        n = self.ids.size
        starts = rng.integers(n, size=num_queries)
        keys = rng.integers(self.size, size=num_queries, dtype=np.int64)
        return np.array(
            [self.lookup(int(s), int(k))[1] for s, k in zip(starts, keys)],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Churn (maintenance accounting mirrors the object ring)
    # ------------------------------------------------------------------
    def _neighbourhood_repair_cost(self) -> int:
        """Messages ``_repair_neighbourhood`` sends: one per refreshed
        successor-list neighbour plus one for the predecessor."""
        return min(self.successor_list_len + 1, self.num_nodes) + 1

    def join(self, node_id: int) -> None:
        """A node joins: id vector grows, fingers go stale, messages count.

        Cost model is the object ring's: ``bits`` messages to build the
        newcomer's state plus the neighbourhood repair sweep.
        """
        node_id %= self.size
        idx = int(np.searchsorted(self.ids, node_id))
        require(
            idx >= self.ids.size or int(self.ids[idx]) != node_id,
            f"node {node_id} already present",
        )
        self.ids = np.insert(self.ids, idx, node_id)
        self._fingers_dirty = True
        self.maintenance_messages += self.bits + self._neighbourhood_repair_cost()

    def leave(self, node_id: int) -> None:
        """Graceful departure: two departure notifications + repair."""
        require(self.num_nodes > 1, "cannot remove the last ring node")
        self.ids = np.delete(self.ids, self.index_of(node_id))
        self._fingers_dirty = True
        self.maintenance_messages += 2 + self._neighbourhood_repair_cost()

    def fail(self, node_id: int) -> None:
        """Crash: neighbours detect and repair; no departure handoff."""
        require(self.num_nodes > 1, "cannot remove the last ring node")
        self.ids = np.delete(self.ids, self.index_of(node_id))
        self._fingers_dirty = True
        self.maintenance_messages += self._neighbourhood_repair_cost()

    def stabilize_all(self) -> None:
        """Full stabilization sweep: rebuild fingers, one message per node."""
        self.build_fingers()
        self.maintenance_messages += self.num_nodes
