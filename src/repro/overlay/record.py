"""ReCord-style randomized-Chord ring with per-level finger fan-out.

"ReCord: A Distributed Hash Table with Recursive Structure" generalises
Chord's deterministic finger table: at level ``i`` a node keeps not just
``successor(id + 2**i)`` but ``h`` fingers sampled from the whole
``[id + 2**i, id + 2**(i+1))`` span.  The fan-out ``h`` sweeps the space
between deterministic Chord (``h = 1``) and a near-complete routing table
(large ``h`` at small ``bits``), trading per-node state and refresh
bandwidth for lookup hops — the axis ``repro tradeoff`` measures.

:class:`ReCordOverlay` subclasses :class:`~repro.overlay.chord.ChordRing`
and overrides only finger construction:

* level ``i``'s first finger is always the deterministic Chord anchor
  ``successor(id + 2**i)`` — so the classic halving argument (and with it
  the ``bits + 1`` structural hop ceiling) still holds, and ``fanout=1``
  degenerates into a byte-identical deterministic Chord ring;
* the remaining ``fanout - 1`` fingers target ``successor(id + 2**i + δ)``
  with ``δ`` drawn from a *stable* hash of ``(seed, node, level, j)`` —
  deterministic across runs, and **nested** in ``j`` so a fan-out-``h``
  table is a superset of the fan-out-``h-1`` table (which is what makes
  mean hops monotone in the fan-out under common random numbers);
* the assembled list is sorted by clockwise distance, the order the
  inherited closest-preceding-finger scan relies on.

Everything else — lookups, walks, storage, churn, maintenance budgets,
invariant checks — is inherited unchanged.
"""

from __future__ import annotations

from hashlib import blake2b

from repro.overlay.chord import ChordNode, ChordRing
from repro.utils.validation import require

__all__ = ["ReCordOverlay"]


class ReCordOverlay(ChordRing):
    """A Chord ring with randomized, fan-out-``h`` finger sampling.

    Examples
    --------
    >>> ring = ReCordOverlay(bits=5, fanout=3, seed=1)
    >>> ring.build_full()
    >>> ring.lookup(ring.node(0), 17).owner.node_id
    17
    """

    def __init__(self, bits: int, *, fanout: int = 2, seed: int = 0, **kwargs) -> None:
        require(fanout >= 1, "fanout must be >= 1")
        self.fanout = fanout
        self.finger_seed = seed
        super().__init__(bits, **kwargs)

    def _sample_offset(self, node_id: int, level: int, j: int) -> int:
        """The ``j``-th sampled extra offset at ``level`` — a stable
        function of (seed, node, level, j), in ``[1, 2**level)``."""
        span = 1 << level
        digest = blake2b(
            f"{self.finger_seed}:{node_id}:{level}:{j}".encode(),
            digest_size=8,
        ).digest()
        return 1 + int.from_bytes(digest, "big") % (span - 1)

    def _refresh_fingers(self, node: ChordNode) -> None:
        nid = node.node_id
        size = self.space.size
        entries: list[tuple[int, ChordNode]] = []
        for level in range(self.bits):
            base = 1 << level
            count = min(self.fanout, base)
            entries.append(
                ((self.successor_of(nid + base).node_id - nid) % size,
                 self.successor_of(nid + base))
            )
            for j in range(1, count):
                target = self.successor_of(
                    nid + base + self._sample_offset(nid, level, j)
                )
                entries.append(((target.node_id - nid) % size, target))
        # Ascending clockwise distance: _closest_preceding scans the
        # reversed list expecting the furthest useful finger first.
        entries.sort(key=lambda e: e[0])
        node.fingers = [n for _, n in entries]
        self._cpf_cache.pop(nid, None)
