"""MAAN — the single-DHT-based *decentralized* comparator (Cai et al., 2004).

MAAN registers each resource-information piece **twice** on one Chord ring:
once under the consistent hash of its attribute name and once under the
locality-preserving hash of its value.  Consequently (Theorem 4.2) its
total stored information is twice everyone else's, and every query needs
**two** lookups per attribute — attribute root and value root — doubling
its non-range hop count (Theorems 4.7/4.8).  Range queries walk ring
successors from ℋ(π1) to ℋ(π2); because values of *all* attributes are
spread over the whole ring, the walk spans the entire system
(Theorem 4.9's ``m(2 + n/4)`` visited nodes).
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.baselines.base import ChordBackedService
from repro.core.resource import Query, QueryResult, ResourceInfo

__all__ = ["MaanService"]

_ATTR_NS = "maan:attr"
_VALUE_NS = "maan:value"


class MaanService(ChordBackedService):
    """Single-DHT decentralized discovery with split attribute/value maps."""

    name: ClassVar[str] = "MAAN"

    #: Attribute root first, then the value root (Theorems 4.7/4.8).
    lookups_per_attribute: ClassVar[int] = 2

    def max_visited_per_subquery(self) -> int:
        # Range: the attribute root plus a value-arc walk that can span
        # the whole ring (Theorem 4.9).
        return self.ring.num_nodes + 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register_impl(self, info: ResourceInfo, *, routed: bool = True) -> int:
        """Two insertions: attribute map and value map (two pieces stored).

        A salting plan spreads the attribute-map insertion over all ``S``
        salted roots; the value map is untouched (its load spreads by
        value hashing already).
        """
        attr_keys = self.attr_store_keys(info.attribute)
        value_key = self.value_hash(info.attribute)(info.value)
        if not routed:
            for attr_key in attr_keys:
                self.ring.store(_ATTR_NS, attr_key, info)
            self.ring.store(_VALUE_NS, value_key, info)
            hops = 0
        else:
            origin = self.random_node()
            hops = 0
            for attr_key in attr_keys:
                hops += self.ring.routed_store(origin, _ATTR_NS, attr_key, info).hops
            hops += self.ring.routed_store(origin, _VALUE_NS, value_key, info).hops
            self.metrics.record("register.hops", hops)
        if self.hot_replicator is not None:
            self.hot_replicator.on_register(info, attr_keys[0])
        return hops

    def deregister(self, info: ResourceInfo) -> int:
        """Withdraw all stored copies (attribute map roots and value map)."""
        removed = sum(
            self.ring.discard(_ATTR_NS, attr_key, info)
            for attr_key in self.attr_store_keys(info.attribute)
        )
        value_key = self.value_hash(info.attribute)(info.value)
        removed += self.ring.discard(_VALUE_NS, value_key, info)
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _query_impl(self, q: Query, start: Any | None = None) -> QueryResult:
        """Two lookups per attribute; range queries additionally walk the
        value arc across the whole ring."""
        start = self._resolve_start(start)
        constraint = q.constraint
        spec = self.schema.spec(q.attribute)
        vh = self.value_hash(q.attribute)

        # Lookup 1: the attribute root (checks its directory) — under a
        # mitigation, the requester's stable salted root or hot replica.
        attr_route, _, _ = self.attr_read_target(q.attribute, q.requester, _ATTR_NS)
        attr_lookup = self.ring.lookup(start, attr_route)
        if not attr_lookup.complete:
            return self._failed_result(attr_lookup)
        self.ring.network.count_directory_check(1)
        stats = self.load_stats
        if stats is not None:
            stats.record_serve(attr_lookup.owner.uid, q.attribute)
            stats.record_route_path(attr_lookup.path)

        if not q.is_range:
            # Lookup 2: the value root answers the point query.
            value_key = vh(constraint.low)
            value_lookup = self.ring.lookup(start, value_key)
            hops = attr_lookup.hops + value_lookup.hops
            retries = attr_lookup.retries + value_lookup.retries
            if not value_lookup.complete:
                self._record(hops, 1)
                return QueryResult(
                    matches=(), hops=hops, visited_nodes=1,
                    complete=False, retries=retries,
                    timed_out=value_lookup.timed_out,
                )
            matches = tuple(
                info
                for info in value_lookup.owner.items_at(_VALUE_NS, value_key)
                if info.attribute == q.attribute and constraint.matches(info.value)
            )
            self.ring.network.count_directory_check(1)
            if stats is not None:
                stats.record_serve(value_lookup.owner.uid, q.attribute)
                stats.record_route_path(value_lookup.path)
            self._record(hops, 2)
            return QueryResult(
                matches=matches, hops=hops, visited_nodes=2, retries=retries
            )

        # Lookup 2 + walk: value roots across the queried arc.
        low, high = constraint.bounds_within(spec.lo, spec.hi)
        k1, k2 = vh.hash_range(low, high)
        value_lookup = self.ring.lookup(start, k1)
        if not value_lookup.complete:
            hops = attr_lookup.hops + value_lookup.hops
            self._record(hops, 1)
            return QueryResult(
                matches=(), hops=hops, visited_nodes=1,
                complete=False,
                retries=attr_lookup.retries + value_lookup.retries,
                timed_out=value_lookup.timed_out,
            )
        walk = self.ring.walk_arc(value_lookup.owner, k1, k2)
        matches: tuple = ()
        if self.collect_matches:
            matches = tuple(
                info
                for node in walk
                for info in node.items_in(_VALUE_NS)
                if info.attribute == q.attribute and constraint.matches(info.value)
            )
        hops = attr_lookup.hops + value_lookup.hops + (len(walk) - 1)
        visited = 1 + len(walk)  # attribute root + every walked value node
        self.ring.network.count_hop(len(walk) - 1)
        self.ring.network.count_directory_check(len(walk))
        if stats is not None:
            stats.record_serves((node.uid for node in walk), q.attribute)
            stats.record_route_path(value_lookup.path)
        self._record(hops, visited)
        return QueryResult(
            matches=matches, hops=hops, visited_nodes=visited,
            complete=not walk.truncated,
            retries=attr_lookup.retries + value_lookup.retries + walk.retries,
            timed_out=walk.timed_out,
        )

    def _record(self, hops: int, visited: int) -> None:
        self.metrics.record_pair("query.hops", hops, "query.visited", visited)
