"""Uniform discovery-service interface over all four approaches.

Every approach — LORM, Mercury, SWORD, MAAN — implements
:class:`DiscoveryService`: register resource information, resolve
single-attribute queries (point or range) with hop / visited-node
accounting, resolve multi-attribute queries as parallel sub-queries joined
on provider, and report the structural metrics of Figure 3 (per-node
outlinks and directory sizes).  The experiment harness and the equivalence
tests run identical workloads through this interface.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from collections.abc import Iterable
from typing import Any, ClassVar

import numpy as np

from repro.core.join import join_on_provider
from repro.core.resource import (
    MultiAttributeQuery,
    MultiQueryResult,
    Query,
    QueryResult,
    ResourceInfo,
)
from repro.hashing.consistent import ConsistentHash
from repro.hashing.locality import LocalityPreservingHash
from repro.hashing.spread import spread_attribute_ids
from repro.overlay.chord import ChordNode, ChordRing
from repro.sim.metrics import MetricsRegistry
from repro.utils.seeding import SeedFactory
from repro.workloads.attributes import AttributeSchema

__all__ = ["DiscoveryService", "ChordBackedService"]


class DiscoveryService(ABC):
    """Abstract resource-discovery service (one per approach).

    Subclasses bind an overlay substrate and implement the placement and
    query strategies; accounting conventions are shared:

    * ``hops`` — overlay routing messages (Figure 4's logical hops);
    * ``visited_nodes`` — nodes that received the query and checked their
      directory (Figure 5/6b's metric).
    """

    #: Human-readable approach name used in reports ("LORM", "Mercury"…).
    name: ClassVar[str] = "abstract"

    #: Routed lookups per attribute sub-query (MAAN's dual attribute+value
    #: registration needs two; everyone else needs one — Theorem 4.2).
    lookups_per_attribute: ClassVar[int] = 1

    #: Optional hop-level :class:`~repro.obs.QueryTracer`.  ``None`` (the
    #: default, a plain class attribute so every subclass inherits it
    #: without ``__init__`` cooperation) keeps all traced code paths
    #: bypassed.
    tracer: Any | None = None

    #: The overlay network while a latency model is attached (``None``
    #: otherwise — a class attribute for the same reason as ``tracer``,
    #: so the no-latency hot path stays one ``is None`` check).
    _latency_net: Any | None = None

    #: Optional :class:`~repro.sim.loadstats.LoadStats` sink.  ``None``
    #: (the default, same class-attribute pattern as ``tracer``) keeps
    #: query paths free of load accounting — one ``is None`` check.
    load_stats: Any | None = None

    metrics: MetricsRegistry
    schema: AttributeSchema

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Any | None) -> None:
        """Attach a :class:`~repro.obs.QueryTracer` to this service *and*
        its overlay substrate (``None`` detaches both).

        While attached, ``register`` / ``query`` / ``multi_query`` wrap
        their work in spans and the overlay emits one hop span per routed
        message; detached, the hot paths are byte-for-byte the untraced
        ones.
        """
        from repro.sim.invariants import overlay_of

        self.tracer = tracer
        overlay_of(self).tracer = tracer

    def attach_load_stats(self, stats: Any | None) -> None:
        """Attach a :class:`~repro.sim.loadstats.LoadStats` sink (``None``
        detaches it).  While attached, every resolved sub-query records
        serve load on the nodes that answered from their directory and
        route load on the intermediate hops; detached, the query paths are
        byte-for-byte the unmeasured ones."""
        self.load_stats = stats

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, info: ResourceInfo, *, routed: bool = True) -> int:
        """Insert one resource-information piece; returns routing hops.

        ``routed=False`` places the item directly at its root (identical
        placement, no routing cost) — used to load paper-scale workloads
        quickly when only placement matters (Figure 3).
        """
        if self.tracer is None:
            return self._register_impl(info, routed=routed)
        with self.tracer.span(
            "register", f"{self.name}.register",
            attribute=info.attribute, routed=routed,
        ) as span:
            hops = self._register_impl(info, routed=routed)
            span.attrs["hops"] = hops
        return hops

    @abstractmethod
    def _register_impl(self, info: ResourceInfo, *, routed: bool = True) -> int:
        """Approach-specific placement behind :meth:`register`."""

    def register_all(self, infos: Iterable[ResourceInfo], *, routed: bool = True) -> int:
        """Register many infos; returns total hops."""
        return sum(self.register(info, routed=routed) for info in infos)

    @abstractmethod
    def deregister(self, info: ResourceInfo) -> int:
        """Withdraw one previously registered info piece.

        Returns the number of stored copies removed (0 if absent).  Used
        by lease expiry: the paper's nodes "report available resources
        periodically", so reports that stop being renewed age out.
        """

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, q: Query, start: Any | None = None) -> QueryResult:
        """Resolve one single-attribute query from entry node ``start``
        (random when omitted)."""
        if self.tracer is None:
            if self._latency_net is None:
                return self._query_impl(q, start)
            return self._timed_query(q, start)
        with self.tracer.span(
            "subquery", f"{self.name}.query",
            attribute=q.attribute, range=q.is_range,
        ) as span:
            if self._latency_net is None:
                result = self._query_impl(q, start)
            else:
                result = self._timed_query(q, start)
                span.attrs["latency"] = result.latency
            span.attrs.update(
                hops=result.hops, visited=result.visited_nodes,
                complete=result.complete, retries=result.retries,
                matches=len(result.matches),
            )
        return result

    def _timed_query(self, q: Query, start: Any | None) -> QueryResult:
        """Resolve one sub-query under the attached latency model and stamp
        the requester-observed response time onto the result.

        The fault-path delivery loop accumulates the requester's waits
        (responses, timeout windows, backoffs) onto the network's
        ``route_clock``; this wrapper reads the per-query delta.  A query
        that never touched the timed loop (fault-free routing, or the
        injector's fast path) costs its hop chain under the model instead.
        """
        net = self._latency_net
        before = net.route_clock
        result = self._query_impl(q, start)
        elapsed = net.route_clock - before
        if elapsed == 0.0 and result.hops:
            elapsed = net.latency_model.route(result.hops)
        self.metrics.record("query.latency", elapsed)
        return dataclasses.replace(result, latency=elapsed)

    @abstractmethod
    def _query_impl(self, q: Query, start: Any | None = None) -> QueryResult:
        """Approach-specific resolution behind :meth:`query`."""

    def multi_query(
        self, mq: MultiAttributeQuery, start: Any | None = None
    ) -> MultiQueryResult:
        """Resolve an m-attribute query: parallel sub-queries + join.

        All sub-queries originate at the same requester entry node, are
        conceptually resolved in parallel, and their results are joined on
        provider address (Section III).
        """
        if self.tracer is None:
            return self._multi_query_impl(mq, start)
        with self.tracer.span(
            "query", f"{self.name}.multi_query",
            attributes=mq.num_attributes,
        ) as span:
            result = self._multi_query_impl(mq, start)
            span.attrs.update(
                total_hops=sum(r.hops for r in result.sub_results),
                total_visited=sum(r.visited_nodes for r in result.sub_results),
                providers=len(result.providers),
                complete=result.complete,
            )
            if self._latency_net is not None:
                span.attrs["latency"] = result.latency
        return result

    def _multi_query_impl(
        self, mq: MultiAttributeQuery, start: Any | None = None
    ) -> MultiQueryResult:
        if start is None:
            start = self.random_node()
        sub_results = tuple(self.query(q, start) for q in mq.sub_queries())
        providers = join_on_provider([r.matches for r in sub_results])
        self.metrics.record_pair(
            "multi_query.total_hops", sum(r.hops for r in sub_results),
            "multi_query.total_visited", sum(r.visited_nodes for r in sub_results),
        )
        result = MultiQueryResult(providers=providers, sub_results=sub_results)
        if not result.complete:
            self.metrics.incr("multi_query.incomplete")
        if result.retries:
            self.metrics.record("multi_query.retries", result.retries)
        if self._latency_net is not None:
            self.metrics.record("multi_query.latency", result.latency)
        return result

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def configure_faults(self, injector: Any, policy: Any | None = None) -> None:
        """Attach a fault injector (and optional lookup policy) to the
        service's overlay network; ``injector=None`` detaches it.

        Subclasses bind this to their overlay.  While an injector is
        active, lookups run without oracle assistance and can return
        ``complete=False`` results.
        """
        raise NotImplementedError(f"{type(self).__name__} has no overlay binding")

    def configure_latency(self, model: Any | None) -> None:
        """Attach a :class:`~repro.sim.latency.LatencyModel` to the
        service's overlay network (``None`` detaches it).

        While attached, queries come back with a measured ``latency`` and
        the RTT estimators start learning; detached (the default), no
        randomness is drawn and query results are byte-identical to the
        pre-latency world.  Attaching resets the RTT book so back-to-back
        measurement cells never share estimator state.
        """
        from repro.sim.invariants import overlay_of

        net = overlay_of(self).network
        net.latency_model = model
        net.reset_rtt()
        self._latency_net = net if model is not None else None

    # ------------------------------------------------------------------
    # Structure metrics (Figure 3)
    # ------------------------------------------------------------------
    @abstractmethod
    def random_node(self) -> Any:
        """A uniformly random live node (query entry point)."""

    @abstractmethod
    def directory_sizes(self) -> list[int]:
        """Per-node resource-information piece counts."""

    @abstractmethod
    def outlink_counts(self) -> list[int]:
        """Per-node maintained-neighbour counts (Mercury multiplies by the
        number of hubs, as each node participates in every hub)."""

    @abstractmethod
    def num_nodes(self) -> int:
        """Current live population."""

    def total_info_pieces(self) -> int:
        """System-wide stored pieces (MAAN stores 2 per info, Theorem 4.2)."""
        return sum(self.directory_sizes())

    # ------------------------------------------------------------------
    # Structural bounds (differential-harness support)
    # ------------------------------------------------------------------
    @abstractmethod
    def structural_hop_bound(self) -> int:
        """Worst-case hops of one routed lookup on the *stabilized*,
        fault-free overlay at its current population.  A hard structural
        ceiling (not the theorem average) — any fault-free lookup
        exceeding it indicates corrupted routing state."""

    @abstractmethod
    def max_visited_per_subquery(self) -> int:
        """Worst-case visited nodes of one attribute sub-query (point or
        range) at the current population."""

    def subquery_hop_bound(self) -> int:
        """Worst-case hops of one attribute sub-query: its routed
        lookup(s) plus at most one forwarding hop per visited node."""
        return (
            self.lookups_per_attribute * self.structural_hop_bound()
            + self.max_visited_per_subquery()
        )

    # ------------------------------------------------------------------
    # Churn (Section V-C)
    # ------------------------------------------------------------------
    @abstractmethod
    def churn_leave(self) -> bool:
        """A random live node departs gracefully; False if impossible."""

    @abstractmethod
    def churn_join(self) -> bool:
        """A previously departed node rejoins; False if none is vacant."""

    @abstractmethod
    def churn_fail(self) -> bool:
        """A random live node *crashes* (no key hand-off); False if
        impossible.  Whether data survives depends on the overlay's
        replication factor."""

    @abstractmethod
    def stabilize(self, budget: Any | None = None) -> Any:
        """One periodic stabilization round.

        ``budget=None`` is the seed behaviour — a global sweep re-deriving
        every node's routing state.  A :class:`~repro.sim.maintenance.
        MaintenanceBudget` instead spends one bounded maintenance round
        (stabilize / refresh / replica-repair caps) and returns its
        :class:`~repro.sim.maintenance.MaintenanceReport`.
        """

    def maintenance_round(self) -> Any:
        """The service's lazily created budgeted-maintenance round (one
        round-robin cursor state per service)."""
        from repro.sim.invariants import overlay_of
        from repro.sim.maintenance import MaintenanceRound

        round_ = getattr(self, "_maintenance_round", None)
        if round_ is None:
            round_ = MaintenanceRound(overlay_of(self))
            self._maintenance_round = round_
        return round_


class ChordBackedService(DiscoveryService):
    """Common machinery for the Chord-based approaches.

    Owns the ring, the consistent hash ``H`` over attribute names, lazily
    constructed per-attribute locality-preserving hashes ``ℋ``, the query
    RNG and the churn bookkeeping.
    """

    #: Optional :class:`~repro.core.hotspot.SaltPlan` spreading attribute
    #: roots over salted replicas.  Must be set at construction (it
    #: changes placement), hence a ctor kwarg; ``None`` keeps the seed
    #: single-root placement byte-identical.
    salting: Any | None = None

    #: Optional :class:`~repro.core.hotspot.DynamicReplicator` (attached
    #: via :meth:`attach_hot_replicator`; ``None`` keeps root reads on
    #: the native owner).
    hot_replicator: Any | None = None

    def __init__(
        self,
        ring: ChordRing,
        schema: AttributeSchema,
        *,
        seed: int = 0,
        lph_kind: str = "cdf",
        attr_placement: str = "spread",
        salting: Any | None = None,
    ) -> None:
        self.ring = ring
        self.salting = salting
        self.schema = schema
        self.lph_kind = lph_kind
        #: When False, range queries skip gathering the matching infos and
        #: only produce accounting (hops / visited nodes).  The paper-scale
        #: range benchmarks measure visited-node counts over millions of
        #: node visits; collecting matches there is pure overhead.
        self.collect_matches = True
        self.metrics = MetricsRegistry()
        self._seeds = SeedFactory(seed).fork(f"service:{self.name}")
        self._rng: np.random.Generator = self._seeds.numpy("queries")
        self._churn_rng: np.random.Generator = self._seeds.numpy("churn")
        self.attr_hash = ConsistentHash(bits=ring.bits)
        #: "spread" gives every attribute a distinct root ID (the paper's
        #: model — see repro.hashing.spread); "hash" is plain consistent
        #: hashing with collisions.
        self.attr_placement = attr_placement
        self._attr_ids: dict[str, int] | None = None
        self._value_hashes: dict[str, LocalityPreservingHash] = {}
        self._departed: list[int] = []

    @classmethod
    def build_full(
        cls,
        bits: int,
        schema: AttributeSchema,
        *,
        seed: int = 0,
        replication: int = 1,
        durability: Any | None = None,
        ring_factory: Any | None = None,
        **kwargs: Any,
    ) -> "ChordBackedService":
        """A service over a fully populated ``2**bits``-node ring.

        ``ring_factory`` selects the routing tier (plain Chord by
        default; single-hop and ReCord substrates plug in here).
        """
        make = ring_factory if ring_factory is not None else ChordRing
        ring = make(bits, replication=replication, durability=durability)
        ring.build_full()
        return cls(ring, schema, seed=seed, **kwargs)

    @classmethod
    def build(
        cls,
        bits: int,
        num_nodes: int,
        schema: AttributeSchema,
        *,
        seed: int = 0,
        replication: int = 1,
        durability: Any | None = None,
        ring_factory: Any | None = None,
        **kwargs: Any,
    ) -> "ChordBackedService":
        """A service over ``num_nodes`` uniformly placed ring nodes."""
        rng = SeedFactory(seed).numpy(f"{cls.name}-membership")
        make = ring_factory if ring_factory is not None else ChordRing
        ring = make(bits, replication=replication, durability=durability)
        ids = rng.choice(ring.space.size, size=min(num_nodes, ring.space.size), replace=False)
        ring.build(int(i) for i in ids)
        return cls(ring, schema, seed=seed, **kwargs)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def attr_key(self, attribute: str) -> int:
        """The ring ID of ``attribute``'s root (``H(a)``, spread or plain)."""
        if self.attr_placement == "hash":
            return self.attr_hash(attribute)
        if self._attr_ids is None:
            self._attr_ids = spread_attribute_ids(self.schema.names, self.attr_hash)
        try:
            return self._attr_ids[attribute]
        except KeyError:
            raise KeyError(
                f"attribute {attribute!r} is not in the globally-known schema "
                f"({len(self.schema)} attributes)"
            ) from None

    def attach_hot_replicator(self, replicator: Any | None) -> None:
        """Attach a :class:`~repro.core.hotspot.DynamicReplicator`
        (``None`` detaches; any placed replicas are dropped first so the
        service returns to its unmitigated read path)."""
        if replicator is None and self.hot_replicator is not None:
            self.hot_replicator.clear()
        self.hot_replicator = replicator

    def attr_store_keys(self, attribute: str) -> tuple[int, ...]:
        """Every ring key a registration for ``attribute``'s directory
        writes: the native root, or all ``S`` salted roots.  Salted roots
        use the plain consistent hash of the salted name (spread
        placement only covers schema attributes)."""
        if self.salting is not None and self.salting.applies_to(attribute):
            return tuple(
                self.attr_hash(name) for name in self.salting.salted_names(attribute)
            )
        return (self.attr_key(attribute),)

    def attr_read_target(
        self, attribute: str, requester: str, namespace: str
    ) -> tuple[int, str, int]:
        """``(route_key, directory_namespace, directory_key)`` for one
        attribute-root read by ``requester``.

        Unmitigated, all three collapse to the native root.  Under a
        :attr:`salting` plan the requester's stable salted root is both
        route and directory key.  Under an attached
        :attr:`hot_replicator`, a replicated attribute may route to a
        replica node's own id while the directory key stays the native
        root (replica copies live under the replicator's namespace).
        """
        key = self.attr_key(attribute)
        if self.salting is not None and self.salting.applies_to(attribute):
            name = self.salting.salted_names(attribute)[
                self.salting.choose(attribute, requester)
            ]
            salted = self.attr_hash(name)
            return salted, namespace, salted
        if self.hot_replicator is not None:
            target = self.hot_replicator.route_for(attribute, requester)
            if target is not None:
                return target, self.hot_replicator.replica_namespace, key
        return key, namespace, key

    def value_hash(self, attribute: str) -> LocalityPreservingHash:
        """The locality-preserving hash ℋ for ``attribute`` on this ring."""
        vh = self._value_hashes.get(attribute)
        if vh is None:
            vh = self.schema.spec(attribute).value_hash(
                size=self.ring.space.size, kind=self.lph_kind
            )
            self._value_hashes[attribute] = vh
        return vh

    def random_node(self) -> ChordNode:
        ids = self.ring.node_ids
        return self.ring.node(ids[int(self._rng.integers(len(ids)))])

    def directory_sizes(self) -> list[int]:
        return self.ring.directory_sizes()

    def outlink_counts(self) -> list[int]:
        return self.ring.outlink_counts()

    def num_nodes(self) -> int:
        return self.ring.num_nodes

    def structural_hop_bound(self) -> int:
        # Closest-preceding-finger routing at least halves the clockwise
        # distance per hop, so ``bits`` hops reach the key's predecessor
        # and one more lands on the owner.
        return self.ring.bits + 1

    def max_visited_per_subquery(self) -> int:
        # A range walk can cover the whole ring (Theorem 4.10's worst case).
        return self.ring.num_nodes

    def _resolve_start(self, start: ChordNode | None) -> ChordNode:
        return start if start is not None else self.random_node()

    def _failed_result(self, lookup: Any) -> QueryResult:
        """A lookup that never reached an owner: honest empty partial."""
        self.metrics.record_pair("query.hops", lookup.hops, "query.visited", 0)
        return QueryResult(
            matches=(), hops=lookup.hops, visited_nodes=0,
            complete=False, retries=lookup.retries, timed_out=lookup.timed_out,
        )

    def configure_faults(self, injector: Any, policy: Any | None = None) -> None:
        self.ring.network.faults = injector
        if policy is not None:
            self.ring.lookup_policy = policy

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def churn_leave(self) -> bool:
        if self.ring.num_nodes <= 2:
            return False
        ids = self.ring.node_ids
        victim = int(ids[int(self._churn_rng.integers(len(ids)))])
        self.ring.leave(victim)
        self._departed.append(victim)
        return True

    def churn_join(self) -> bool:
        if not self._departed:
            return False
        idx = int(self._churn_rng.integers(len(self._departed)))
        node_id = self._departed.pop(idx)
        self.ring.join(node_id)
        return True

    def churn_fail(self) -> bool:
        if self.ring.num_nodes <= 2:
            return False
        ids = self.ring.node_ids
        victim = int(ids[int(self._churn_rng.integers(len(ids)))])
        self.ring.fail(victim)
        self._departed.append(victim)
        return True

    def stabilize(self, budget: Any | None = None) -> Any:
        if budget is None:
            self.ring.stabilize_all()
            return None
        return self.maintenance_round().run(budget)
