"""Mercury's record/pointer optimisation (Section IV, disabled there).

The paper notes: "In Mercury, for higher efficiency of resource query, a
node within one of the hubs can hold the data record while the other hubs
can hold a pointer to the node.  This strategy can also be applied to other
methods.  To make the different methods be comparable, we don't consider
this strategy in the comparative study."

This module implements the strategy so its trade-off can be measured (see
``benchmarks/test_ablation_pointers.py``): a provider's full record — its
values for *all* attributes — is stored once, in the **home hub** (the
record's first attribute); every other hub stores only a lightweight
pointer.  Queries landing on a pointer chase one extra overlay lookup to
the home record, exchanging lookup hops for an m-fold reduction in stored
record copies.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.baselines.mercury import MercuryService
from repro.core.resource import Query, QueryResult, ResourceInfo
from repro.utils.validation import require

__all__ = ["PointerMercuryService", "RecordEnvelope", "RecordPointer"]


@dataclass(frozen=True)
class RecordEnvelope:
    """A provider's full record, stored once in its home hub."""

    provider: str
    infos: tuple[ResourceInfo, ...]

    def value_of(self, attribute: str) -> float | None:
        for info in self.infos:
            if info.attribute == attribute:
                return info.value
        return None


@dataclass(frozen=True)
class RecordPointer:
    """A pointer stored in non-home hubs: where the full record lives."""

    provider: str
    #: The indexing value in *this* hub (so range filtering works locally).
    local_value: float
    home_attribute: str
    home_key: int


class PointerMercuryService(MercuryService):
    """Mercury with the record/pointer strategy enabled.

    Providers register whole records via :meth:`register_record`; the
    single-info :meth:`register` degenerates to a one-attribute record so
    the uniform interface keeps working.
    """

    name: ClassVar[str] = "Mercury+ptr"

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_record(
        self, infos: Sequence[ResourceInfo], *, routed: bool = True
    ) -> int:
        """Store the full record in the home hub, pointers elsewhere."""
        require(len(infos) >= 1, "a record needs at least one attribute")
        provider = infos[0].provider
        require(
            all(i.provider == provider for i in infos),
            "all infos of a record must share one provider",
        )
        home = infos[0]
        home_key = self.value_hash(home.attribute)(home.value)
        envelope = RecordEnvelope(provider=provider, infos=tuple(infos))

        hops = 0
        if routed:
            result = self.ring.routed_store(
                self.random_node(), self._hub(home.attribute), home_key, envelope
            )
            hops += result.hops
        else:
            self.ring.store(self._hub(home.attribute), home_key, envelope)

        for info in infos[1:]:
            key = self.value_hash(info.attribute)(info.value)
            pointer = RecordPointer(
                provider=provider,
                local_value=info.value,
                home_attribute=home.attribute,
                home_key=home_key,
            )
            if routed:
                result = self.ring.routed_store(
                    self.random_node(), self._hub(info.attribute), key, pointer
                )
                hops += result.hops
            else:
                self.ring.store(self._hub(info.attribute), key, pointer)
        if routed:
            self.metrics.record("register.hops", hops)
        return hops

    def _register_impl(self, info: ResourceInfo, *, routed: bool = True) -> int:
        """Single-attribute registration = a one-attribute record."""
        return self.register_record([info], routed=routed)

    def deregister_record(self, infos: Sequence[ResourceInfo]) -> int:
        """Withdraw a record: the home envelope plus every pointer."""
        require(len(infos) >= 1, "a record needs at least one attribute")
        home = infos[0]
        home_key = self.value_hash(home.attribute)(home.value)
        envelope = RecordEnvelope(provider=home.provider, infos=tuple(infos))
        removed = self.ring.discard(self._hub(home.attribute), home_key, envelope)
        for info in infos[1:]:
            key = self.value_hash(info.attribute)(info.value)
            pointer = RecordPointer(
                provider=info.provider,
                local_value=info.value,
                home_attribute=home.attribute,
                home_key=home_key,
            )
            removed += self.ring.discard(self._hub(info.attribute), key, pointer)
        return removed

    def deregister(self, info: ResourceInfo) -> int:
        """Withdraw a one-attribute record."""
        return self.deregister_record([info])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _query_impl(self, q: Query, start: Any | None = None) -> QueryResult:
        """Mercury query with pointer chasing.

        Hub items may be full records (match locally) or pointers (filter
        on the pointer's local value, then chase one lookup to the home
        record).  Chased lookups add to the hop count — the cost side of
        the optimisation.
        """
        start = self._resolve_start(start)
        constraint = q.constraint
        spec = self.schema.spec(q.attribute)
        vh = self.value_hash(q.attribute)
        namespace = self._hub(q.attribute)

        low, high = constraint.bounds_within(spec.lo, spec.hi)
        k1, k2 = vh.hash_range(low, high)
        lookup = self.ring.lookup(start, k1)
        if not lookup.complete:
            return self._failed_result(lookup)
        walk = (
            [lookup.owner]
            if not q.is_range
            else self.ring.walk_arc(lookup.owner, k1, k2)
        )

        matches: list[ResourceInfo] = []
        chase_hops = 0
        chase_retries = 0
        chase_incomplete = False
        for node in walk:
            items = (
                node.items_at(namespace, k1) if not q.is_range
                else node.items_in(namespace)
            )
            for item in items:
                if isinstance(item, RecordEnvelope):
                    value = item.value_of(q.attribute)
                    if value is not None and constraint.matches(value):
                        matches.append(ResourceInfo(q.attribute, value, item.provider))
                elif isinstance(item, RecordPointer):
                    if not constraint.matches(item.local_value):
                        continue
                    chased = self.ring.lookup(start, item.home_key)
                    chase_hops += chased.hops
                    chase_retries += chased.retries
                    if not chased.complete:
                        # The pointed-at record is unreachable: this match
                        # is silently missing unless flagged.
                        chase_incomplete = True
                        continue
                    for envelope in chased.owner.items_at(
                        self._hub(item.home_attribute), item.home_key
                    ):
                        if (
                            isinstance(envelope, RecordEnvelope)
                            and envelope.provider == item.provider
                        ):
                            matches.append(
                                ResourceInfo(q.attribute, item.local_value, item.provider)
                            )
                            break

        hops = lookup.hops + (len(walk) - 1) + chase_hops
        walk_truncated = getattr(walk, "truncated", False)
        walk_retries = getattr(walk, "retries", 0)
        self.ring.network.count_hop(len(walk) - 1)
        self.ring.network.count_directory_check(len(walk))
        self._record(hops, len(walk))
        return QueryResult(
            matches=tuple(matches), hops=hops, visited_nodes=len(walk),
            complete=not (walk_truncated or chase_incomplete),
            retries=lookup.retries + walk_retries + chase_retries,
            timed_out=getattr(walk, "timed_out", False),
        )

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    def stored_record_copies(self) -> int:
        """Full record envelopes stored system-wide (1 per provider here,
        versus m value-indexed copies in plain Mercury)."""
        return sum(
            1
            for node in self.ring.nodes()
            for _, _, item in node.stored_entries()
            if isinstance(item, RecordEnvelope)
        )

    def stored_pointers(self) -> int:
        """Lightweight pointers stored system-wide."""
        return sum(
            1
            for node in self.ring.nodes()
            for _, _, item in node.stored_entries()
            if isinstance(item, RecordPointer)
        )
