"""Mercury — the multi-DHT-based comparator (Bharambe et al., 2004).

Mercury maintains one *attribute hub* per attribute type; every grid node
joins every hub, and within a hub resource information is indexed by the
locality-preserving hash of its *value*, so range queries are resolved by
walking hub successors over the queried value arc.  Per the paper's setup,
hubs are Chord rings, and the record/pointer optimisation is disabled
("To make the different methods be comparable, we don't consider this
strategy").

Simulation note — since all m hubs have identical membership and are
structurally isomorphic, they are realised as *one* physical ring carrying
m per-attribute namespaces.  Placement, hop counts and per-node directory
content are exactly those of m separate rings whose node IDs coincide; the
only metric that differs is structural maintenance, which is therefore
scaled by m explicitly (each node maintains a full routing table *per
hub*), matching how the paper accounts Mercury's overhead in Theorem 4.1
and Figure 3(a).
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.baselines.base import ChordBackedService
from repro.core.resource import Query, QueryResult, ResourceInfo

__all__ = ["MercuryService"]


class MercuryService(ChordBackedService):
    """Multi-DHT resource discovery: one value-indexed Chord hub per attribute."""

    name: ClassVar[str] = "Mercury"

    @staticmethod
    def _hub(attribute: str) -> str:
        return f"hub:{attribute}"

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register_impl(self, info: ResourceInfo, *, routed: bool = True) -> int:
        """Insert into the attribute's hub at the value's root."""
        key = self.value_hash(info.attribute)(info.value)
        namespace = self._hub(info.attribute)
        if not routed:
            self.ring.store(namespace, key, info)
            return 0
        result = self.ring.routed_store(self.random_node(), namespace, key, info)
        self.metrics.record("register.hops", result.hops)
        return result.hops

    def deregister(self, info: ResourceInfo) -> int:
        """Withdraw the info from its hub (owner and replicas)."""
        key = self.value_hash(info.attribute)(info.value)
        return self.ring.discard(self._hub(info.attribute), key, info)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _query_impl(self, q: Query, start: Any | None = None) -> QueryResult:
        """One hub lookup; range queries walk hub successors over the arc."""
        start = self._resolve_start(start)
        constraint = q.constraint
        spec = self.schema.spec(q.attribute)
        vh = self.value_hash(q.attribute)
        namespace = self._hub(q.attribute)

        if not q.is_range:
            key = vh(constraint.low)  # point: low == high
            lookup = self.ring.lookup(start, key)
            if not lookup.complete:
                return self._failed_result(lookup)
            matches = tuple(
                info
                for info in lookup.owner.items_at(namespace, key)
                if constraint.matches(info.value)
            )
            self.ring.network.count_directory_check(1)
            if self.load_stats is not None:
                self.load_stats.record_serve(lookup.owner.uid, q.attribute)
                self.load_stats.record_route_path(lookup.path)
            self._record(lookup.hops, 1)
            return QueryResult(
                matches=matches, hops=lookup.hops, visited_nodes=1,
                retries=lookup.retries,
            )

        low, high = constraint.bounds_within(spec.lo, spec.hi)
        k1, k2 = vh.hash_range(low, high)
        lookup = self.ring.lookup(start, k1)
        if not lookup.complete:
            return self._failed_result(lookup)
        walk = self.ring.walk_arc(lookup.owner, k1, k2)
        matches: tuple = ()
        if self.collect_matches:
            matches = tuple(
                info
                for node in walk
                for info in node.items_in(namespace)
                if constraint.matches(info.value)
            )
        hops = lookup.hops + (len(walk) - 1)
        self.ring.network.count_hop(len(walk) - 1)
        self.ring.network.count_directory_check(len(walk))
        if self.load_stats is not None:
            self.load_stats.record_serves((node.uid for node in walk), q.attribute)
            self.load_stats.record_route_path(lookup.path)
        self._record(hops, len(walk))
        return QueryResult(
            matches=matches, hops=hops, visited_nodes=len(walk),
            complete=not walk.truncated,
            retries=lookup.retries + walk.retries,
            timed_out=walk.timed_out,
        )

    def _record(self, hops: int, visited: int) -> None:
        self.metrics.record_pair("query.hops", hops, "query.visited", visited)

    # ------------------------------------------------------------------
    # Structure metrics
    # ------------------------------------------------------------------
    def outlink_counts(self) -> list[int]:
        """Each node maintains a routing table in *every* hub (m of them)."""
        num_hubs = len(self.schema)
        return [num_hubs * links for links in self.ring.outlink_counts()]

    def maintenance_scale(self) -> int:
        """Structural maintenance multiplier (one full DHT per attribute)."""
        return len(self.schema)
