"""SWORD — the single-DHT-based *centralized* comparator (Oppenheimer et
al., 2004; Chord substrate per the paper's setup).

SWORD pools all resource information of a given attribute at a single
directory node — the root of the consistent hash of the attribute name.
Point and range queries alike are answered entirely by that root, so a
range query visits exactly one node per attribute (Theorem 4.9's ``m``
visited nodes), at the price of extreme directory imbalance: with m=200
attributes, all 100k info pieces pile up on 200 of the 2048 nodes
(Figure 3(c)).
"""

from __future__ import annotations

from typing import Any, ClassVar

from repro.baselines.base import ChordBackedService
from repro.core.resource import Query, QueryResult, ResourceInfo

__all__ = ["SwordService"]

_NAMESPACE = "sword"


class SwordService(ChordBackedService):
    """Single-DHT centralized discovery: one directory node per attribute."""

    name: ClassVar[str] = "SWORD"

    def max_visited_per_subquery(self) -> int:
        # The attribute root answers alone, point or range (Theorem 4.9).
        return 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register_impl(self, info: ResourceInfo, *, routed: bool = True) -> int:
        """Insert at the attribute root, ``successor(H(attribute))`` —
        or at all ``S`` salted roots under a salting plan."""
        keys = self.attr_store_keys(info.attribute)
        if not routed:
            for key in keys:
                self.ring.store(_NAMESPACE, key, info)
            hops = 0
        else:
            origin = self.random_node()
            hops = 0
            for key in keys:
                hops += self.ring.routed_store(origin, _NAMESPACE, key, info).hops
            self.metrics.record("register.hops", hops)
        if self.hot_replicator is not None:
            self.hot_replicator.on_register(info, keys[0])
        return hops

    def deregister(self, info: ResourceInfo) -> int:
        """Withdraw the info from the attribute root(s)."""
        return sum(
            self.ring.discard(_NAMESPACE, key, info)
            for key in self.attr_store_keys(info.attribute)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _query_impl(self, q: Query, start: Any | None = None) -> QueryResult:
        """One lookup; the attribute root answers point and range queries
        alike from its pooled directory (no forwarding)."""
        start = self._resolve_start(start)
        constraint = q.constraint
        route_key, dir_ns, dir_key = self.attr_read_target(
            q.attribute, q.requester, _NAMESPACE
        )
        lookup = self.ring.lookup(start, route_key)
        if not lookup.complete:
            return self._failed_result(lookup)
        matches = tuple(
            info
            for info in lookup.owner.items_at(dir_ns, dir_key)
            if info.attribute == q.attribute and constraint.matches(info.value)
        )
        self.ring.network.count_directory_check(1)
        if self.load_stats is not None:
            self.load_stats.record_serve(lookup.owner.uid, q.attribute)
            self.load_stats.record_route_path(lookup.path)
        self.metrics.record_pair("query.hops", lookup.hops, "query.visited", 1)
        return QueryResult(
            matches=matches, hops=lookup.hops, visited_nodes=1,
            retries=lookup.retries,
        )
