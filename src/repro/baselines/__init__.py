"""The paper's comparator approaches, each on a Chord substrate.

* :class:`~repro.baselines.mercury.MercuryService` — multi-DHT-based: one
  value-indexed hub (Chord ring) per attribute (Bharambe et al., SIGCOMM
  2004, as configured by the paper with Chord hubs).
* :class:`~repro.baselines.sword.SwordService` — single-DHT-based
  centralized: all information for an attribute pooled at the attribute
  root (Oppenheimer et al., 2004, with Chord replacing Bamboo).
* :class:`~repro.baselines.maan.MaanService` — single-DHT-based
  decentralized: attribute and value registered separately, two lookups per
  attribute (Cai et al., 2004).
"""

from repro.baselines.base import ChordBackedService, DiscoveryService
from repro.baselines.maan import MaanService
from repro.baselines.mercury import MercuryService
from repro.baselines.mercury_pointers import PointerMercuryService
from repro.baselines.sword import SwordService

__all__ = [
    "ChordBackedService",
    "DiscoveryService",
    "MaanService",
    "MercuryService",
    "PointerMercuryService",
    "SwordService",
]
