"""ASCII topology/load rendering for the overlays.

Two renderers for eyeballing placement and balance in the terminal:

* :func:`render_ring_load` — a Chord ring unrolled into fixed-width bins,
  one glyph per bin encoding the directory load of the nodes inside it;
  makes SWORD's attribute-root hotspots or a skewed LPH instantly visible.
* :func:`render_cluster_grid` — Cycloid as a cluster × cyclic-index grid,
  load-glyph per node; shows LORM's one-attribute-per-cluster striping.

Glyph scale: ``.`` empty, then ``▁▂▃▄▅▆▇█`` by load relative to the
maximum (falls back to ``12345678`` with ``ascii_only=True``).
"""

from __future__ import annotations

from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidOverlay
from repro.utils.validation import require

__all__ = ["render_cluster_grid", "render_ring_load"]

_BLOCKS = ".▁▂▃▄▅▆▇█"
_ASCII = ".12345678"


def _glyph(load: float, max_load: float, ascii_only: bool) -> str:
    scale = _ASCII if ascii_only else _BLOCKS
    if load <= 0 or max_load <= 0:
        return scale[0]
    level = 1 + int((load / max_load) * (len(scale) - 2) + 0.5)
    return scale[min(level, len(scale) - 1)]


def render_ring_load(
    ring: ChordRing,
    namespace: str | None = None,
    *,
    width: int = 64,
    ascii_only: bool = False,
) -> str:
    """Render a Chord ring's per-node directory load into ``width`` bins.

    Each bin aggregates the load of nodes whose IDs fall inside it; the
    legend reports the heaviest node.
    """
    require(width >= 8, "width must be >= 8")
    bins = [0.0] * width
    size = ring.space.size
    heaviest = (None, 0)
    for node in ring.nodes():
        load = node.directory_size(namespace)
        bins[node.node_id * width // size] += load
        if load > heaviest[1]:
            heaviest = (node.node_id, load)
    max_bin = max(bins) if bins else 0.0
    row = "".join(_glyph(b, max_bin, ascii_only) for b in bins)
    what = f"namespace {namespace!r}" if namespace else "all namespaces"
    lines = [
        f"Chord ring load ({ring.num_nodes} nodes, {what})",
        f"id 0 {'-' * (width - 10)} {size - 1}",
        row,
        f"max bin: {max_bin:.0f} pieces; heaviest node: "
        f"{heaviest[0]} ({heaviest[1]} pieces)",
    ]
    return "\n".join(lines)


def render_cluster_grid(
    overlay: CycloidOverlay,
    namespace: str | None = None,
    *,
    clusters_per_row: int = 32,
    ascii_only: bool = False,
) -> str:
    """Render a Cycloid overlay as cluster columns × cyclic-index rows.

    Column ``a`` holds cluster ``a``; row ``k`` (top = high k) shows the
    node ``(k, a)``'s load glyph, or a space when the position is vacant.
    """
    require(clusters_per_row >= 4, "clusters_per_row must be >= 4")
    d = overlay.dimension
    num_clusters = overlay.cubical_space.size
    loads: dict[tuple[int, int], float] = {}
    max_load = 0.0
    for node in overlay.nodes():
        load = node.directory_size(namespace)
        loads[(node.k, node.a)] = load
        max_load = max(max_load, load)

    what = f"namespace {namespace!r}" if namespace else "all namespaces"
    lines = [
        f"Cycloid d={d} load grid ({overlay.num_nodes}/{overlay.capacity} "
        f"nodes, {what}; columns = clusters, rows = cyclic index)"
    ]
    for band_start in range(0, num_clusters, clusters_per_row):
        band = range(band_start, min(band_start + clusters_per_row, num_clusters))
        lines.append(f"clusters {band.start}..{band.stop - 1}:")
        for k in range(d - 1, -1, -1):
            cells = []
            for a in band:
                if (k, a) in loads:
                    cells.append(_glyph(loads[(k, a)], max_load, ascii_only))
                else:
                    cells.append(" ")
            lines.append(f"  k={k} |{''.join(cells)}|")
    lines.append(f"max node load: {max_load:.0f} pieces")
    return "\n".join(lines)
