"""Terminal plotting (the offline environment has no matplotlib).

Every figure is emitted as CSV plus an ASCII line chart rendered by
:func:`~repro.plotting.ascii.ascii_chart`.
"""

from repro.plotting.ascii import ascii_chart
from repro.plotting.topology import render_cluster_grid, render_ring_load

__all__ = ["ascii_chart", "render_cluster_grid", "render_ring_load"]
