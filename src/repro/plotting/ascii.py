"""ASCII line charts for figure output in the terminal.

Renders multiple named series on a shared grid with optional logarithmic
y-axis (Figure 5(a) is log-scale in the paper).  Each series gets a marker
character; collisions show the later series' marker.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.utils.formatting import format_float
from repro.utils.validation import require

__all__ = ["ascii_chart"]

_MARKERS = "ox*+#@%&"


def _ticks(lo: float, hi: float, count: int) -> list[float]:
    if math.isclose(lo, hi):
        return [lo] * count
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


def ascii_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 18,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping of series name to ``(xs, ys)``.
    log_y:
        Plot ``log10(y)`` on the vertical axis (requires positive y).

    Examples
    --------
    >>> out = ascii_chart({"s": ([1, 2, 3], [1, 4, 9])}, title="demo")
    >>> "demo" in out and "s" in out
    True
    """
    require(bool(series), "need at least one series")
    all_x = [float(x) for xs, _ in series.values() for x in xs]
    all_y = [float(y) for _, ys in series.values() for y in ys]
    require(bool(all_x), "series contain no points")
    if log_y:
        require(min(all_y) > 0, "log_y requires strictly positive values")
        transform = math.log10
    else:
        def transform(v: float) -> float:
            return v

    x_lo, x_hi = min(all_x), max(all_x)
    t_y = [transform(y) for y in all_y]
    y_lo, y_hi = min(t_y), max(t_y)
    if math.isclose(x_lo, x_hi):
        x_hi = x_lo + 1.0
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, int((x - x_lo) / (x_hi - x_lo) * (width - 1) + 0.5))

    def to_row(y: float) -> int:
        frac = (transform(y) - y_lo) / (y_hi - y_lo)
        return min(height - 1, int((1.0 - frac) * (height - 1) + 0.5))

    legend: list[str] = []
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        points = sorted(zip(xs, ys))
        # Draw line segments by linear interpolation between points.
        for (x1, y1), (x2, y2) in zip(points, points[1:]):
            c1, c2 = to_col(x1), to_col(x2)
            for col in range(c1, c2 + 1):
                if c2 == c1:
                    y = y1
                else:
                    f = (col - c1) / (c2 - c1)
                    if log_y:
                        y = 10 ** (
                            transform(y1) + f * (transform(y2) - transform(y1))
                        )
                    else:
                        y = y1 + f * (y2 - y1)
                grid[to_row(y)][col] = "." if grid[to_row(y)][col] == " " else grid[to_row(y)][col]
        for x, y in points:
            grid[to_row(y)][to_col(x)] = marker

    y_axis_ticks = _ticks(y_lo, y_hi, 4)
    label_width = max(
        len(format_float(10**t if log_y else t)) for t in y_axis_ticks
    )
    lines: list[str] = []
    if title:
        lines.append(title)
    scale_note = " (log y)" if log_y else ""
    lines.append(f"{y_label}{scale_note}")
    tick_rows = {0, height // 3, 2 * height // 3, height - 1}
    for row in range(height):
        if row in tick_rows:
            frac = 1.0 - row / (height - 1)
            t = y_lo + frac * (y_hi - y_lo)
            value = 10**t if log_y else t
            label = format_float(value).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(grid[row])}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_ticks = _ticks(x_lo, x_hi, 4)
    tick_text = "    ".join(format_float(t) for t in x_ticks)
    lines.append(" " * (label_width + 2) + tick_text + f"   [{x_label}]")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
