"""The deterministic benchmark-op inventory.

:func:`build_ops` materialises the benchmarkable state for one
:class:`~repro.experiments.config.ExperimentConfig` and returns the op
list the ``repro bench`` CLI times:

* ``calibration.spin`` — a pure-Python busy loop used by the compare
  step to normalise away machine-speed differences between the machine
  that produced a committed baseline and the CI runner;
* overlay micro-ops — Chord/Cycloid oracle resolution, link-routed
  lookups, range walks and full stabilization sweeps on standalone
  overlays at the configured scale;
* metrics micro-ops — single vs batched sample recording;
* per-system macro-ops — routed registration and 3-attribute range
  multi-queries for LORM, Mercury, SWORD and MAAN over a fully loaded
  service bundle;
* ``figure.*`` — end-to-end figure runs through the figure registry.

Every op's inputs are pre-sampled from :class:`SeedFactory` streams
keyed on ``config.seed``, and every op folds what it computed (owners,
hops, walk lengths, joined providers) into an integer checksum, so the
op inventory and all non-timing report fields are a pure function of
``(config, profile)``.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.bench.harness import BenchOp
from repro.experiments.common import build_services
from repro.experiments.config import ExperimentConfig
from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay
from repro.sim.metrics import MetricsRegistry
from repro.utils.seeding import SeedFactory
from repro.workloads.generator import QueryKind

__all__ = ["PROFILES", "build_ops"]

#: Op groups selectable via ``repro bench --profile``.
PROFILES = ("micro", "macro", "figures", "all")

#: Figures timed end-to-end (one sweep figure per overlay family keeps a
#: full ``--smoke`` run interactive; the heavier panels are covered by
#: ``repro run``).
_FIGURE_IDS = ("fig4a", "fig5a")

#: Fixed rng seed used to re-seed a service's query stream at the top of
#: every macro-op repeat, making hop counts repeat-stable (services
#: otherwise draw entry nodes from an advancing stream).
_MACRO_RNG_SEED = 0xBE7C4


def _mask(value: int) -> int:
    """Keep checksums in signed-64-bit range for JSON friendliness."""
    return value & 0x7FFFFFFFFFFFFFFF


def _calibration_op() -> BenchOp:
    def run(iterations: int) -> int:
        acc = 0
        for _ in range(iterations):
            x = 1
            for _ in range(400):
                x = (x * 1103515245 + 12345) % 2147483648
            acc += x
        return _mask(acc)

    return BenchOp(name="calibration.spin", kind="micro", iterations=200, run=run)


# ----------------------------------------------------------------------
# Overlay micro-ops
# ----------------------------------------------------------------------
def _build_chord(config: ExperimentConfig, seeds: SeedFactory) -> ChordRing:
    """A stabilized ring at the configured bits/population."""
    ring = ChordRing(config.chord_bits)
    size = 1 << config.chord_bits
    if config.population >= size:
        ring.build_full()
    else:
        rng = seeds.numpy("chord-ids")
        ids = rng.choice(size, size=config.population, replace=False)
        ring.build(int(i) for i in ids)
    return ring


def _chord_ops(config: ExperimentConfig, seeds: SeedFactory) -> list[BenchOp]:
    ring = _build_chord(config, seeds)
    size = 1 << config.chord_bits
    rng = seeds.numpy("chord-inputs")
    keys = [int(k) for k in rng.integers(size, size=4096)]
    node_ids = ring.node_ids
    starts = [ring.node(node_ids[int(i)]) for i in rng.integers(len(node_ids), size=512)]
    # Arcs at the workload's expected span (Theorem 4.9's average case).
    arc_spans = [int(s) for s in rng.integers(1, max(2, size // 4), size=256)]

    def run_successor(iterations: int) -> int:
        acc = 0
        nkeys = len(keys)
        for i in range(iterations):
            acc += ring.successor_of(keys[i % nkeys]).node_id
        return _mask(acc)

    def run_lookup(iterations: int) -> int:
        acc = 0
        nkeys, nstarts = len(keys), len(starts)
        for i in range(iterations):
            result = ring.lookup(starts[i % nstarts], keys[i % nkeys])
            acc += result.owner.node_id + result.hops
        return _mask(acc)

    def run_walk(iterations: int) -> int:
        acc = 0
        nkeys, nspans = len(keys), len(arc_spans)
        for i in range(iterations):
            from_key = keys[i % nkeys]
            until_key = (from_key + arc_spans[i % nspans]) % size
            walk = ring.walk_arc(ring.successor_of(from_key), from_key, until_key)
            nodes = list(walk)
            acc += len(nodes) + (nodes[-1].node_id if nodes else 0)
        return _mask(acc)

    def run_stabilize(iterations: int) -> int:
        for _ in range(iterations):
            ring.stabilize_all()
        return _mask(iterations * ring.num_nodes)

    return [
        BenchOp(name="chord.successor_of", kind="micro", iterations=20000, run=run_successor),
        BenchOp(name="chord.lookup", kind="micro", iterations=1500, run=run_lookup),
        BenchOp(name="chord.walk_arc", kind="micro", iterations=300, run=run_walk),
        BenchOp(name="chord.stabilize_all", kind="micro", iterations=3, repeats=3, run=run_stabilize),
    ]


def _routing_tier_ops(config: ExperimentConfig, seeds: SeedFactory) -> list[BenchOp]:
    """Micro-ops over the single-hop and ReCord routing tiers.

    ``singlehop.lookup`` times the believed-owner jump on a fully
    disseminated membership table, ``singlehop.stabilize`` a full
    dissemination sweep with a standing backlog (one join + one leave per
    iteration, so every repeat flushes the same pending set), and
    ``record.lookup`` the sampled-finger greedy routing at fan-out 4.
    """
    from repro.overlay.record import ReCordOverlay
    from repro.overlay.singlehop import SingleHopRing

    size = 1 << config.chord_bits
    rng = seeds.numpy("tier-inputs")
    ids = sorted(int(i) for i in rng.choice(size, size=config.population, replace=False))

    single = SingleHopRing(config.chord_bits)
    single.build(ids)
    record = ReCordOverlay(config.chord_bits, fanout=4, seed=config.seed)
    record.build(ids)
    keys = [int(k) for k in rng.integers(size, size=4096)]
    starts = [int(ids[int(i)]) for i in rng.integers(len(ids), size=512)]
    joiner = next(i for i in range(size) if i not in single._nodes)

    def run_single_lookup(iterations: int) -> int:
        acc = 0
        nkeys, nstarts = len(keys), len(starts)
        for i in range(iterations):
            result = single.lookup(single.node(starts[i % nstarts]), keys[i % nkeys])
            acc += result.owner.node_id + result.hops
        return _mask(acc)

    def run_record_lookup(iterations: int) -> int:
        acc = 0
        nkeys, nstarts = len(keys), len(starts)
        for i in range(iterations):
            result = record.lookup(record.node(starts[i % nstarts]), keys[i % nkeys])
            acc += result.owner.node_id + result.hops
        return _mask(acc)

    def run_single_stabilize(iterations: int) -> int:
        acc = 0
        for _ in range(iterations):
            single.join(joiner)
            single.leave(joiner)
            acc += single.pending_events()
            single.stabilize_all()
        return _mask(acc + single.pending_events())

    return [
        BenchOp(name="singlehop.lookup", kind="micro", iterations=3000, run=run_single_lookup),
        BenchOp(name="record.lookup", kind="micro", iterations=1500, run=run_record_lookup),
        BenchOp(name="singlehop.stabilize", kind="micro", iterations=3, repeats=3, run=run_single_stabilize),
    ]


def _cycloid_ops(config: ExperimentConfig, seeds: SeedFactory) -> list[BenchOp]:
    overlay = CycloidOverlay(config.dimension)
    overlay.build_full()
    d = config.dimension
    num_clusters = 1 << d
    rng = seeds.numpy("cycloid-inputs")
    targets = [
        CycloidId(int(k), int(a))
        for k, a in zip(rng.integers(d, size=4096), rng.integers(num_clusters, size=4096))
    ]
    node_ids = overlay.node_ids
    starts = [overlay.node(node_ids[int(i)]) for i in rng.integers(len(node_ids), size=512)]
    sectors = [
        (int(a), int(k1), int(k2))
        for a, k1, k2 in zip(
            rng.integers(num_clusters, size=512),
            rng.integers(d, size=512),
            rng.integers(d, size=512),
        )
    ]

    def run_closest(iterations: int) -> int:
        acc = 0
        ntargets = len(targets)
        for i in range(iterations):
            acc += overlay.linearize(overlay.closest_node(targets[i % ntargets]).cid)
        return _mask(acc)

    def run_lookup(iterations: int) -> int:
        acc = 0
        ntargets, nstarts = len(targets), len(starts)
        for i in range(iterations):
            result = overlay.lookup(starts[i % nstarts], targets[i % ntargets])
            acc += overlay.linearize(result.owner.cid) + result.hops
        return _mask(acc)

    def run_walk(iterations: int) -> int:
        acc = 0
        nsectors = len(sectors)
        for i in range(iterations):
            a, k_from, k_to = sectors[i % nsectors]
            start = overlay.closest_node(CycloidId(k_from, a))
            walk = overlay.walk_cluster(start, k_from, k_to)
            acc += len(walk)
        return _mask(acc)

    def run_stabilize(iterations: int) -> int:
        for _ in range(iterations):
            overlay.stabilize_all()
        return _mask(iterations * overlay.num_nodes)

    return [
        BenchOp(name="cycloid.closest_node", kind="micro", iterations=20000, run=run_closest),
        BenchOp(name="cycloid.lookup", kind="micro", iterations=1500, run=run_lookup),
        BenchOp(name="cycloid.walk_cluster", kind="micro", iterations=1000, run=run_walk),
        BenchOp(name="cycloid.stabilize_all", kind="micro", iterations=3, repeats=3, run=run_stabilize),
    ]


def _arraystore_ops(config: ExperimentConfig, seeds: SeedFactory) -> list[BenchOp]:
    """Micro-ops over the compact struct-of-arrays core.

    ``build`` times the large-n construction path (id sampling + the
    vectorised finger build) at 8x the configured population, ``lookup``
    the greedy array-routing loop, and ``churn`` a membership-restoring
    join+leave pair (so every repeat sees identical state and the
    checksum stays repeat-stable).
    """
    from repro.overlay.arraystore import CompactChordRing

    build_nodes = 8 * config.population
    build_seed = seeds.child_seed("arraystore-build")
    ring = CompactChordRing.sampled(
        config.population, seed=seeds.child_seed("arraystore-ring")
    )
    rng = seeds.numpy("arraystore-inputs")
    keys = [int(k) for k in rng.integers(ring.size, size=4096, dtype=np.int64)]
    starts = [int(i) for i in rng.integers(ring.num_nodes, size=512)]
    joiner = int(rng.integers(ring.size))
    while joiner in ring.ids:
        joiner = int(rng.integers(ring.size))

    def run_build(iterations: int) -> int:
        acc = 0
        for _ in range(iterations):
            built = CompactChordRing.sampled(build_nodes, seed=build_seed)
            built.build_fingers()
            acc += int(built.ids.sum()) + int(built.fingers.sum())
        return _mask(acc)

    def run_lookup(iterations: int) -> int:
        acc = 0
        nkeys, nstarts = len(keys), len(starts)
        for i in range(iterations):
            owner, hops = ring.lookup(starts[i % nstarts], keys[i % nkeys])
            acc += owner + hops
        return _mask(acc)

    def run_churn(iterations: int) -> int:
        before = ring.maintenance_messages
        for _ in range(iterations):
            ring.join(joiner)
            ring.leave(joiner)
        ring.build_fingers()  # leave the shared ring clean for later ops
        return _mask(ring.maintenance_messages - before)

    return [
        BenchOp(name="arraystore.build", kind="micro", iterations=3, repeats=3, run=run_build),
        BenchOp(name="arraystore.lookup", kind="micro", iterations=3000, run=run_lookup),
        BenchOp(name="arraystore.churn", kind="micro", iterations=200, run=run_churn),
    ]


def _latency_ops(seeds: SeedFactory) -> list[BenchOp]:
    """Micro-ops over the fail-slow latency substrate.

    ``latency.sample`` times the lognormal per-message draw (the tail
    experiment's hot inner call); ``latency.deliver_hedged`` times one
    full timed delivery round — latency sample, adaptive timeout, hedge
    race, estimator update — under a gray-failing destination.  Both ops
    rebuild their seeded state per call, so checksums are repeat-stable.
    """
    from repro.sim.faults import HEDGED_POLICY, FaultInjector, FaultPlan, deliver_first
    from repro.sim.latency import LognormalLatency
    from repro.sim.network import SimulatedNetwork

    model_seed = seeds.child_seed("latency-model") % (2**31)

    def run_sample(iterations: int) -> int:
        model = LognormalLatency(median=0.05, sigma=0.35, seed=model_seed)
        acc = 0.0
        for _ in range(iterations):
            acc += model.sample()
        return _mask(int(acc * 1e6))

    def run_hedged(iterations: int) -> int:
        net = SimulatedNetwork()
        injector = FaultInjector(FaultPlan(seed=model_seed))
        injector.mark_slow(7, 20.0, 0.6)
        net.faults = injector
        net.latency_model = LognormalLatency(
            median=0.05, sigma=0.35, seed=model_seed
        )
        candidates = [(7, "slow"), (9, "healthy")]
        acc = 0
        for i in range(iterations):
            _, retries, skipped = deliver_first(
                net, i % 32, candidates, HEDGED_POLICY
            )
            acc += retries + skipped
        acc += net.stats.hedges + net.stats.timeouts + net.stats.retries
        return _mask(acc + int(net.route_clock * 1e6))

    return [
        BenchOp(name="latency.sample", kind="micro", iterations=20000, run=run_sample),
        BenchOp(name="latency.deliver_hedged", kind="micro", iterations=2000, run=run_hedged),
    ]


def _metrics_ops() -> list[BenchOp]:
    def run_record(iterations: int) -> int:
        registry = MetricsRegistry()
        for i in range(iterations):
            registry.record("bench.single", float(i))
        return _mask(iterations)

    def run_record_pair(iterations: int) -> int:
        # The per-query write pattern: hops + visited, every operation.
        # On trees predating record_pair this falls back to the old
        # two-call pattern, so cross-tree compares measure the call-site
        # change itself.
        registry = MetricsRegistry()
        if hasattr(registry, "record_pair"):
            for i in range(iterations):
                registry.record_pair("bench.a", i, "bench.b", i * 2)
        else:
            for i in range(iterations):
                registry.record("bench.a", i)
                registry.record("bench.b", i * 2)
        return _mask(iterations)

    return [
        BenchOp(name="metrics.record", kind="micro", iterations=20000, run=run_record),
        BenchOp(name="metrics.record_pair", kind="micro", iterations=10000, run=run_record_pair),
    ]


# ----------------------------------------------------------------------
# Per-system macro-ops
# ----------------------------------------------------------------------
def _macro_ops(config: ExperimentConfig) -> list[BenchOp]:
    # Queries run over the fully loaded bundle; registrations target a
    # separate *empty* bundle so routed-store duplicates never leak into
    # the query ops' match sets.
    query_bundle = build_services(config)
    register_bundle = build_services(config, register=False)
    num_attrs = min(3, config.max_query_attributes)
    queries = list(
        query_bundle.workload.query_stream(
            40, num_attrs, QueryKind.RANGE, label="bench-macro"
        )
    )
    infos = [
        info
        for info, _ in zip(register_bundle.workload.resource_infos(), range(200))
    ]

    ops: list[BenchOp] = []
    for query_service, register_service in zip(
        query_bundle.all(), register_bundle.all()
    ):
        sys_name = query_service.name.lower()

        def run_register(iterations: int, svc=register_service) -> int:
            # Re-seed the entry-node stream so hop totals are
            # repeat-stable (see _MACRO_RNG_SEED).
            svc._rng = np.random.default_rng(_MACRO_RNG_SEED)
            hops = 0
            ninfos = len(infos)
            for i in range(iterations):
                hops += svc.register(infos[i % ninfos], routed=True)
            return _mask(hops)

        def run_query(iterations: int, svc=query_service) -> int:
            svc._rng = np.random.default_rng(_MACRO_RNG_SEED)
            acc = 0
            nqueries = len(queries)
            for i in range(iterations):
                result = svc.multi_query(queries[i % nqueries])
                acc += len(result.providers) + sum(
                    r.hops for r in result.sub_results
                )
            return _mask(acc)

        ops.append(
            BenchOp(
                name=f"{sys_name}.register", kind="macro",
                iterations=100, repeats=5, run=run_register,
            )
        )
        ops.append(
            BenchOp(
                name=f"{sys_name}.multi_query", kind="macro",
                iterations=30, repeats=5, run=run_query,
            )
        )
    return ops


# ----------------------------------------------------------------------
# End-to-end figure ops
# ----------------------------------------------------------------------
def _figure_ops(config: ExperimentConfig) -> list[BenchOp]:
    # Imported here so ``--profile micro`` never pays the experiments
    # import chain.
    from repro.experiments.runner import run_figure

    ops = []
    for figure_id in _FIGURE_IDS:

        def run(iterations: int, figure_id=figure_id) -> int:
            acc = 0
            for _ in range(iterations):
                result = run_figure(figure_id, config)
                acc += zlib.crc32(result.render().encode("utf-8"))
            return _mask(acc)

        ops.append(
            BenchOp(
                name=f"figure.{figure_id}", kind="figure",
                iterations=1, repeats=1, warmup=False, run=run,
            )
        )
    return ops


def build_ops(config: ExperimentConfig, profile: str = "all") -> list[BenchOp]:
    """The op inventory for ``config`` (a pure function of its seed).

    ``profile`` selects op groups: ``micro`` (overlay/metrics
    primitives), ``macro`` (per-system register/multi-query), ``figures``
    (end-to-end figure runs) or ``all``.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {PROFILES}")
    seeds = SeedFactory(config.seed).fork("bench")
    ops = [_calibration_op()]
    if profile in ("micro", "all"):
        ops.extend(_chord_ops(config, seeds))
        ops.extend(_routing_tier_ops(config, seeds))
        ops.extend(_cycloid_ops(config, seeds))
        ops.extend(_arraystore_ops(config, seeds))
        ops.extend(_latency_ops(seeds))
        ops.extend(_metrics_ops())
    if profile in ("macro", "all"):
        ops.extend(_macro_ops(config))
    if profile in ("figures", "all"):
        ops.extend(_figure_ops(config))
    return ops
