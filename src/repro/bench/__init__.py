"""Wall-clock benchmark subsystem (``repro bench``).

The paper's figures measure *logical* cost — hops, visited nodes,
directory sizes — but the ROADMAP's north star ("as fast as the hardware
allows") needs *wall-clock* footing too.  This package times the
simulator's real hot paths and emits a schema-versioned
``BENCH_<timestamp>.json`` that the CI perf gate diffs against a
committed baseline:

* :mod:`repro.bench.harness` — deterministic op timing (p50/p95/mean ns,
  ops/sec), RSS, git sha and config fingerprints;
* :mod:`repro.bench.ops` — the op inventory: overlay micro-ops
  (Chord/Cycloid lookup, range walks, stabilization), per-system
  registration and multi-attribute-query macro-ops, and end-to-end
  figure runs;
* :mod:`repro.bench.report` — the ``BENCH_*.json`` schema and IO;
* :mod:`repro.bench.compare` — two-report diffing with a regression
  threshold and a machine-speed calibration normaliser (non-zero exit
  past the threshold; the CI gate).

Ops are seeded and return a result checksum, so two runs with the same
seed produce identical op inventories and identical non-timing fields —
only the nanosecond samples differ.
"""

from repro.bench.compare import CompareResult, compare_reports
from repro.bench.harness import BenchOp, OpResult, time_op
from repro.bench.ops import build_ops
from repro.bench.report import SCHEMA_VERSION, BenchReport, run_bench

__all__ = [
    "SCHEMA_VERSION",
    "BenchOp",
    "BenchReport",
    "CompareResult",
    "OpResult",
    "build_ops",
    "compare_reports",
    "run_bench",
    "time_op",
]
