"""Two-report regression gating (``repro bench compare``).

Raw nanoseconds are not comparable across machines, so each report
carries a ``calibration.spin`` op — a pure-Python busy loop whose cost
tracks single-core interpreter speed.  The gate compares *normalised*
ratios::

    regression(op) = (cur.min / base.min) / (cur.cal_min / base.cal_min)

i.e. "how much slower did this op get, beyond how much slower this whole
machine is".  Gating uses each op's *minimum* per-iteration time — the
least-noise estimator, since scheduler interference only ever adds time
— so a 25% CI threshold is meaningful even with few repeats.  An op
regresses when the ratio exceeds ``1 + threshold``; the
CLI exits non-zero if any op regresses.  Checksum mismatches and
inventory drift are reported as warnings (they signal a behaviour or
inventory change, which the determinism tests own) but do not gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.report import BenchReport

__all__ = ["CompareResult", "OpDelta", "compare_reports"]

_CALIBRATION_OP = "calibration.spin"


@dataclass
class OpDelta:
    """One op's baseline-vs-current comparison."""

    name: str
    kind: str
    base_ns: float
    cur_ns: float
    #: cur/base min-time ratio after machine-speed normalisation (1.0 =
    #: flat, 0.5 = twice as fast, 2.0 = twice as slow).
    ratio: float
    regressed: bool
    checksum_match: bool


@dataclass
class CompareResult:
    """The full diff; ``ok`` drives the CLI exit code."""

    threshold: float
    #: cal_cur/cal_base — the machine-speed factor divided out of every ratio.
    machine_factor: float
    deltas: list[OpDelta] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[OpDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"{'op':<28} {'base min':>12} {'cur min':>12} "
            f"{'norm ratio':>10}  verdict",
        ]
        for d in self.deltas:
            if d.regressed:
                verdict = f"REGRESSED (> {1 + self.threshold:.2f}x)"
            elif d.ratio < 1.0:
                verdict = f"improved ({1 / d.ratio:.2f}x faster)"
            else:
                verdict = "ok"
            lines.append(
                f"{d.name:<28} {d.base_ns:>10.0f}ns {d.cur_ns:>10.0f}ns "
                f"{d.ratio:>10.3f}  {verdict}"
            )
        lines.append(
            f"machine factor (calibration cur/base): {self.machine_factor:.3f}"
        )
        for warning in self.warnings:
            lines.append(f"warning: {warning}")
        lines.append(
            "PASS: no op regressed beyond threshold"
            if self.ok
            else f"FAIL: {len(self.regressions)} op(s) regressed beyond "
            f"{self.threshold:.0%}"
        )
        return "\n".join(lines)


def compare_reports(
    base: BenchReport, current: BenchReport, *, threshold: float = 0.25
) -> CompareResult:
    """Diff ``current`` against ``base`` with a relative ``threshold``.

    Ops are matched by name; the calibration op sets the machine-speed
    factor and is itself exempt from gating (it *is* the normaliser).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    warnings: list[str] = []
    base_ops = {op.name: op for op in base.ops}
    cur_ops = {op.name: op for op in current.ops}

    base_cal = base_ops.get(_CALIBRATION_OP)
    cur_cal = cur_ops.get(_CALIBRATION_OP)
    if base_cal is None or cur_cal is None or base_cal.min_ns <= 0:
        warnings.append(
            "calibration op missing from a report; comparing raw timings"
        )
        machine_factor = 1.0
    else:
        machine_factor = cur_cal.min_ns / base_cal.min_ns

    only_base = sorted(set(base_ops) - set(cur_ops))
    only_cur = sorted(set(cur_ops) - set(base_ops))
    if only_base:
        warnings.append(f"ops only in baseline: {', '.join(only_base)}")
    if only_cur:
        warnings.append(f"ops only in current: {', '.join(only_cur)}")
    if base.scale != current.scale or base.profile != current.profile:
        warnings.append(
            f"comparing different runs: baseline scale={base.scale} "
            f"profile={base.profile}, current scale={current.scale} "
            f"profile={current.profile}"
        )

    deltas: list[OpDelta] = []
    for name in (n for n in base_ops if n in cur_ops):
        base_op, cur_op = base_ops[name], cur_ops[name]
        checksum_match = base_op.checksum == cur_op.checksum
        if not checksum_match:
            warnings.append(
                f"checksum mismatch on {name}: baseline {base_op.checksum} "
                f"!= current {cur_op.checksum} (behaviour changed)"
            )
        if base_op.min_ns <= 0:
            continue
        ratio = (cur_op.min_ns / base_op.min_ns) / machine_factor
        deltas.append(
            OpDelta(
                name=name,
                kind=cur_op.kind,
                base_ns=base_op.min_ns,
                cur_ns=cur_op.min_ns,
                ratio=ratio,
                regressed=(
                    name != _CALIBRATION_OP and ratio > 1.0 + threshold
                ),
                checksum_match=checksum_match,
            )
        )
    return CompareResult(
        threshold=threshold,
        machine_factor=machine_factor,
        deltas=deltas,
        warnings=warnings,
    )
