"""Deterministic wall-clock timing for benchmark ops.

A :class:`BenchOp` is a named, seeded closure: ``run(iterations)``
executes the op's inner loop and returns an integer *checksum* of the
computed results.  :func:`time_op` runs it ``repeats`` times under
``time.perf_counter_ns`` and reduces the per-iteration nanosecond samples
to the summary the bench report stores.

The checksum is the determinism contract: it digests what the op
*computed* (owners reached, hops paid, nodes visited), so two runs with
the same seed — or a cached and an uncached overlay — must agree on every
checksum even though their timings differ.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "BenchOp",
    "OpResult",
    "git_sha",
    "host_fingerprint",
    "max_rss_kb",
    "time_op",
]


@dataclass
class BenchOp:
    """One benchmarkable operation.

    ``run(iterations)`` must be deterministic for a fixed seed and must
    not leak state that changes *other* ops' results between repeats; it
    returns a checksum of what it computed.
    """

    name: str
    #: "micro" (single primitive), "macro" (per-system operation) or
    #: "figure" (end-to-end figure run).
    kind: str
    #: Inner-loop count per timed repeat (fixed per scale: part of the
    #: deterministic op inventory).
    iterations: int
    run: Callable[[int], int]
    #: Timed repeats; figure ops override this down to 1.
    repeats: int = 5
    #: Whether to run one untimed warmup repeat first.  End-to-end figure
    #: ops skip it — their metric is the cold end-to-end run, and a warmup
    #: would double their (dominant) cost.
    warmup: bool = True


@dataclass
class OpResult:
    """Timing summary of one op (all times are per-iteration nanoseconds)."""

    name: str
    kind: str
    iterations: int
    repeats: int
    checksum: int
    p50_ns: float
    p95_ns: float
    mean_ns: float
    min_ns: float
    ops_per_sec: float
    samples_ns: list[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON form; timing lives under ``timing`` so consumers (and the
        determinism tests) can strip it wholesale."""
        return {
            "name": self.name,
            "kind": self.kind,
            "iterations": self.iterations,
            "repeats": self.repeats,
            "checksum": self.checksum,
            "timing": {
                "p50_ns": self.p50_ns,
                "p95_ns": self.p95_ns,
                "mean_ns": self.mean_ns,
                "min_ns": self.min_ns,
                "ops_per_sec": self.ops_per_sec,
                "samples_ns": self.samples_ns,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OpResult":
        timing = data["timing"]
        return cls(
            name=data["name"],
            kind=data["kind"],
            iterations=data["iterations"],
            repeats=data["repeats"],
            checksum=data["checksum"],
            p50_ns=timing["p50_ns"],
            p95_ns=timing["p95_ns"],
            mean_ns=timing["mean_ns"],
            min_ns=timing["min_ns"],
            ops_per_sec=timing["ops_per_sec"],
            samples_ns=list(timing.get("samples_ns", [])),
        )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation percentile (numpy default) without numpy."""
    if not sorted_values:
        return float("nan")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (len(sorted_values) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def time_op(op: BenchOp) -> OpResult:
    """Time ``op``: one untimed warmup repeat, then ``op.repeats`` timed.

    Checksums of every repeat (warmup included) must agree — a mismatch
    means the op mutates state it depends on, which would silently skew
    both the timing and the determinism contract, so it raises.
    """
    checksum: int | None = op.run(op.iterations) if op.warmup else None
    samples: list[float] = []
    for _ in range(op.repeats):
        started = time.perf_counter_ns()
        repeat_checksum = op.run(op.iterations)
        elapsed = time.perf_counter_ns() - started
        if checksum is None:
            checksum = repeat_checksum
        elif repeat_checksum != checksum:
            raise RuntimeError(
                f"bench op {op.name!r} is not repeatable: checksum "
                f"{repeat_checksum} != {checksum} — it mutates state its "
                "own results depend on"
            )
        samples.append(elapsed / op.iterations)
    ordered = sorted(samples)
    mean_ns = sum(samples) / len(samples)
    return OpResult(
        name=op.name,
        kind=op.kind,
        iterations=op.iterations,
        repeats=op.repeats,
        checksum=checksum,
        p50_ns=_percentile(ordered, 0.50),
        p95_ns=_percentile(ordered, 0.95),
        mean_ns=mean_ns,
        min_ns=ordered[0],
        ops_per_sec=1e9 / mean_ns if mean_ns > 0 else float("inf"),
        samples_ns=samples,
    )


def max_rss_kb() -> int | None:
    """Peak RSS of this process in KiB (None where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes.
    return rss // 1024 if platform.system() == "Darwin" else rss


def git_sha() -> str:
    """The repository HEAD sha, or a CI/environment fallback."""
    repo_root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return os.environ.get("GITHUB_SHA", "unknown")


def host_fingerprint() -> dict:
    """Machine/interpreter identification stored alongside the timings."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }
