"""The ``BENCH_*.json`` schema and the bench orchestrator.

A report is one JSON document: schema version, provenance (git sha, host
fingerprint, UTC timestamp), the exact config fingerprint the ops were
built from, peak RSS, and one entry per op.  Everything except the
``timing`` sub-objects and the provenance block is a pure function of
``(config, profile)`` — the determinism tests strip those and require
byte-equality across runs.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.harness import (
    OpResult,
    git_sha,
    host_fingerprint,
    max_rss_kb,
    time_op,
)
from repro.bench.ops import build_ops
from repro.experiments.config import ExperimentConfig

__all__ = ["SCHEMA_VERSION", "BenchReport", "run_bench"]

#: Bump on any backwards-incompatible change to the JSON layout.
SCHEMA_VERSION = 1


@dataclass
class BenchReport:
    """One benchmark run: provenance + config fingerprint + op results."""

    scale: str
    profile: str
    seed: int
    config: dict
    ops: list[OpResult]
    git_sha: str = "unknown"
    host: dict = field(default_factory=dict)
    created_unix: float = 0.0
    rss_max_kb: int | None = None
    schema_version: int = SCHEMA_VERSION

    def op(self, name: str) -> OpResult | None:
        """The result of op ``name`` (None when absent)."""
        for result in self.ops:
            if result.name == name:
                return result
        return None

    def op_names(self) -> list[str]:
        return [result.name for result in self.ops]

    def as_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "created_unix": self.created_unix,
            "git_sha": self.git_sha,
            "host": self.host,
            "scale": self.scale,
            "profile": self.profile,
            "seed": self.seed,
            "config": self.config,
            "rss_max_kb": self.rss_max_kb,
            "ops": [result.as_dict() for result in self.ops],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported bench schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        return cls(
            scale=data["scale"],
            profile=data["profile"],
            seed=data["seed"],
            config=data["config"],
            ops=[OpResult.from_dict(op) for op in data["ops"]],
            git_sha=data.get("git_sha", "unknown"),
            host=data.get("host", {}),
            created_unix=data.get("created_unix", 0.0),
            rss_max_kb=data.get("rss_max_kb"),
            schema_version=version,
        )

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the report; a directory path gets a ``BENCH_<UTC>.json``
        name derived from ``created_unix`` (not wall-clock at save time,
        so re-saving a loaded report is stable)."""
        path = Path(path)
        if path.is_dir() or path.suffix != ".json":
            stamp = time.strftime(
                "%Y%m%dT%H%M%SZ", time.gmtime(self.created_unix)
            )
            path = path / f"BENCH_{stamp}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable table of the op results."""
        lines = [
            f"bench report  scale={self.scale} profile={self.profile} "
            f"seed={self.seed} sha={self.git_sha[:12]}",
            f"{'op':<28} {'kind':<7} {'p50':>12} {'p95':>12} {'ops/sec':>14}",
        ]
        for op in self.ops:
            lines.append(
                f"{op.name:<28} {op.kind:<7} {_fmt_ns(op.p50_ns):>12} "
                f"{_fmt_ns(op.p95_ns):>12} {op.ops_per_sec:>14,.0f}"
            )
        if self.rss_max_kb is not None:
            lines.append(f"peak RSS: {self.rss_max_kb / 1024:.1f} MiB")
        return "\n".join(lines)


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def run_bench(
    config: ExperimentConfig,
    *,
    scale: str,
    profile: str = "all",
    repeats: int | None = None,
    progress=None,
) -> BenchReport:
    """Build the op inventory for ``config`` and time every op.

    ``repeats`` overrides every op's repeat count (the smoke CI gate uses
    the per-op defaults); ``progress`` is an optional ``callable(str)``
    used by the CLI to narrate long runs.
    """
    ops = build_ops(config, profile)
    results = []
    for op in ops:
        if repeats is not None:
            op = dataclasses.replace(op, repeats=repeats)
        if progress is not None:
            progress(f"timing {op.name} ({op.iterations} x {op.repeats})")
        results.append(time_op(op))
    return BenchReport(
        scale=scale,
        profile=profile,
        seed=config.seed,
        config=dataclasses.asdict(config),
        ops=results,
        git_sha=git_sha(),
        host=host_fingerprint(),
        created_unix=time.time(),
        rss_max_kb=max_rss_kb(),
    )
