"""Workload generation per Section V of the paper.

m = 200 resource attributes, k = 500 resource-information pieces per
attribute, values drawn from a Bounded Pareto distribution, query attributes
chosen uniformly at random, and range queries whose expected covered
fraction of the value space is 1/4 (the paper's "average case" regime of
Theorem 4.9).
"""

from repro.workloads.attributes import AttributeSchema, AttributeSpec
from repro.workloads.generator import GridWorkload, QueryKind
from repro.workloads.pareto import BoundedPareto
from repro.workloads.popularity import (
    FlashCrowdPopularity,
    PopularityModel,
    UniformPopularity,
    ZipfPopularity,
)
from repro.workloads.serialization import load_workload, save_workload

__all__ = [
    "AttributeSchema",
    "AttributeSpec",
    "BoundedPareto",
    "FlashCrowdPopularity",
    "GridWorkload",
    "PopularityModel",
    "QueryKind",
    "UniformPopularity",
    "ZipfPopularity",
    "load_workload",
    "save_workload",
]
