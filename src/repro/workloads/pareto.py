"""Bounded Pareto distribution.

The paper: "We used Bounded Pareto distribution function to generate
resource values owned by a node and requested by a node."  The bounded
(truncated) Pareto on ``[L, H]`` with shape ``alpha`` has density

    f(x) = alpha * L^alpha * x^(-alpha-1) / (1 - (L/H)^alpha)

Implemented from scratch (CDF, quantile function, moments, sampling) so the
CDF-calibrated locality-preserving hash can be driven analytically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require, require_positive

__all__ = ["BoundedPareto"]


@dataclass(frozen=True)
class BoundedPareto:
    """Bounded Pareto on ``[low, high]`` with shape ``alpha``.

    Examples
    --------
    >>> d = BoundedPareto(alpha=2.0, low=1.0, high=100.0)
    >>> round(d.cdf(1.0), 6), round(d.cdf(100.0), 6)
    (0.0, 1.0)
    >>> abs(d.cdf(d.ppf(0.3)) - 0.3) < 1e-12
    True
    """

    alpha: float
    low: float
    high: float

    def __post_init__(self) -> None:
        require_positive(self.alpha, "alpha")
        require_positive(self.low, "low")
        require(self.high > self.low, f"need high > low, got [{self.low}, {self.high}]")

    @property
    def _norm(self) -> float:
        """The truncation normaliser ``1 - (L/H)^alpha``."""
        return 1.0 - (self.low / self.high) ** self.alpha

    def cdf(self, x: float) -> float:
        """Cumulative distribution function F(x)."""
        if x <= self.low:
            return 0.0
        if x >= self.high:
            return 1.0
        return (1.0 - (self.low / x) ** self.alpha) / self._norm

    def pdf(self, x: float) -> float:
        """Probability density f(x); zero outside ``[low, high]``."""
        if x < self.low or x > self.high:
            return 0.0
        return (
            self.alpha
            * self.low**self.alpha
            * x ** (-self.alpha - 1.0)
            / self._norm
        )

    def ppf(self, q):
        """Quantile function (inverse CDF); exact inverse of :meth:`cdf`.

        Accepts a scalar or an array of quantiles; both go through the
        same inverse transform and both clamp to ``[low, high]`` (the
        array path used to re-implement the transform without the
        clamping, letting roundoff at ``q`` near 1 exceed ``high``).
        """
        if np.ndim(q):
            q = np.asarray(q, dtype=float)
            require(
                bool(((q >= 0.0) & (q <= 1.0)).all()),
                "quantiles must be in [0, 1]",
            )
            x = self.low / (1.0 - q * self._norm) ** (1.0 / self.alpha)
            return np.clip(x, self.low, self.high)
        require(0.0 <= q <= 1.0, f"quantile must be in [0, 1], got {q}")
        if q <= 0.0:
            return self.low
        if q >= 1.0:
            return self.high
        return self.low / (1.0 - q * self._norm) ** (1.0 / self.alpha)

    def mean(self) -> float:
        """Analytic mean of the bounded distribution.

        For ``alpha != 1`` the mean is ``a*L*(1 - (L/H)^(a-1)) / ((a-1)
        * (1 - (L/H)^a))``; the textbook form cancels catastrophically
        as ``alpha -> 1``, so the numerator is evaluated as ``-expm1((a-1)
        * log(L/H))``, which keeps full precision arbitrarily close to 1
        and converges to the exact ``alpha == 1`` branch, ``L*log(H/L) /
        (1 - L/H)``.
        """
        a, lo, hi = self.alpha, self.low, self.high
        log_ratio = float(np.log(lo / hi))
        if a == 1.0:
            return -lo * log_ratio / self._norm
        num = a * lo * -float(np.expm1((a - 1.0) * log_ratio)) / (a - 1.0)
        return num / self._norm

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw samples via inverse-transform sampling.

        Scalar and vector draws share :meth:`ppf` (one implementation of
        the inverse transform, one clamping policy).
        """
        u = rng.random(size)
        return self.ppf(float(u)) if size is None else self.ppf(u)
