"""Bounded Pareto distribution.

The paper: "We used Bounded Pareto distribution function to generate
resource values owned by a node and requested by a node."  The bounded
(truncated) Pareto on ``[L, H]`` with shape ``alpha`` has density

    f(x) = alpha * L^alpha * x^(-alpha-1) / (1 - (L/H)^alpha)

Implemented from scratch (CDF, quantile function, moments, sampling) so the
CDF-calibrated locality-preserving hash can be driven analytically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require, require_positive

__all__ = ["BoundedPareto"]


@dataclass(frozen=True)
class BoundedPareto:
    """Bounded Pareto on ``[low, high]`` with shape ``alpha``.

    Examples
    --------
    >>> d = BoundedPareto(alpha=2.0, low=1.0, high=100.0)
    >>> round(d.cdf(1.0), 6), round(d.cdf(100.0), 6)
    (0.0, 1.0)
    >>> abs(d.cdf(d.ppf(0.3)) - 0.3) < 1e-12
    True
    """

    alpha: float
    low: float
    high: float

    def __post_init__(self) -> None:
        require_positive(self.alpha, "alpha")
        require_positive(self.low, "low")
        require(self.high > self.low, f"need high > low, got [{self.low}, {self.high}]")

    @property
    def _norm(self) -> float:
        """The truncation normaliser ``1 - (L/H)^alpha``."""
        return 1.0 - (self.low / self.high) ** self.alpha

    def cdf(self, x: float) -> float:
        """Cumulative distribution function F(x)."""
        if x <= self.low:
            return 0.0
        if x >= self.high:
            return 1.0
        return (1.0 - (self.low / x) ** self.alpha) / self._norm

    def pdf(self, x: float) -> float:
        """Probability density f(x); zero outside ``[low, high]``."""
        if x < self.low or x > self.high:
            return 0.0
        return (
            self.alpha
            * self.low**self.alpha
            * x ** (-self.alpha - 1.0)
            / self._norm
        )

    def ppf(self, q: float) -> float:
        """Quantile function (inverse CDF); exact inverse of :meth:`cdf`."""
        require(0.0 <= q <= 1.0, f"quantile must be in [0, 1], got {q}")
        if q <= 0.0:
            return self.low
        if q >= 1.0:
            return self.high
        return self.low / (1.0 - q * self._norm) ** (1.0 / self.alpha)

    def mean(self) -> float:
        """Analytic mean of the bounded distribution."""
        a, lo, hi = self.alpha, self.low, self.high
        if a == 1.0:
            return lo * np.log(hi / lo) / self._norm
        num = (a / (a - 1.0)) * (lo - lo * (lo / hi) ** (a - 1.0))
        return num / self._norm

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw samples via inverse-transform sampling."""
        u = rng.random(size)
        if size is None:
            return self.ppf(float(u))
        # Vectorised inverse transform.
        return self.low / (1.0 - u * self._norm) ** (1.0 / self.alpha)
