"""Resource and query generators reproducing the paper's workload.

* ``k`` providers per attribute report Bounded-Pareto values —
  :meth:`GridWorkload.resource_infos` yields the full ``m × k`` set of
  resource-information pieces.
* Query attributes are "randomly generated" — sampled uniformly without
  replacement.
* Range queries target the paper's *average case* of Theorem 4.9: the
  expected covered fraction of the (hashed) value space is 1/4, achieved by
  drawing the quantile span uniformly from ``[0, 1/2]`` and placing it
  uniformly inside the quantile space.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.core.resource import (
    AttributeConstraint,
    MultiAttributeQuery,
    ResourceInfo,
)
from repro.utils.seeding import SeedFactory
from repro.utils.validation import require
from repro.workloads.attributes import AttributeSchema

__all__ = ["GridWorkload", "QueryKind"]


class QueryKind(str, Enum):
    """Shape of the generated per-attribute constraints."""

    POINT = "point"  # non-range query (Figures 4 / 6a)
    RANGE = "range"  # doubly-bounded range (Figures 5 / 6b)
    AT_LEAST = "at-least"  # one-sided range, "CPU >= 1.8GHz"


@dataclass
class GridWorkload:
    """Deterministic generator of providers, resource infos and queries.

    Parameters
    ----------
    schema:
        The globally-known attribute types.
    infos_per_attribute:
        ``k`` — resource-information pieces per attribute (paper: 500).
        Provider ``p`` reports one value for every attribute, so there are
        exactly ``k`` providers and ``m*k`` info pieces in total.
    seed:
        Master seed; the full workload is a pure function of it.
    mean_span_fraction:
        Expected quantile-space fraction covered by a RANGE constraint
        (paper's average case: 0.25).  The span is drawn uniformly from
        ``[0, 2 * mean_span_fraction]``.
    """

    schema: AttributeSchema
    infos_per_attribute: int = 500
    seed: int = 0
    mean_span_fraction: float = 0.25
    _seeds: SeedFactory = field(init=False, repr=False)
    _values: dict[str, np.ndarray] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        require(self.infos_per_attribute >= 1, "need at least one info per attribute")
        require(
            0.0 < self.mean_span_fraction <= 0.5,
            f"mean_span_fraction must be in (0, 0.5], got {self.mean_span_fraction}",
        )
        self._seeds = SeedFactory(self.seed)
        rng = self._seeds.numpy("provider-values")
        self._values = {
            spec.name: np.asarray(
                spec.distribution.sample(rng, self.infos_per_attribute), dtype=float
            )
            for spec in self.schema
        }

    # ------------------------------------------------------------------
    # Providers and resource information
    # ------------------------------------------------------------------
    @property
    def num_providers(self) -> int:
        """Number of distinct providers (= ``k``)."""
        return self.infos_per_attribute

    def provider_name(self, index: int) -> str:
        """Stable provider address, ``grid-node-0042`` style."""
        return f"grid-node-{index:05d}"

    def provider_value(self, attribute: str, provider_index: int) -> float:
        """The value provider ``provider_index`` reports for ``attribute``."""
        return float(self._values[attribute][provider_index])

    def resource_infos(self) -> Iterator[ResourceInfo]:
        """All ``m * k`` resource-information pieces, provider-major order."""
        for p in range(self.num_providers):
            provider = self.provider_name(p)
            for spec in self.schema:
                yield ResourceInfo(spec.name, float(self._values[spec.name][p]), provider)

    def infos_for_attribute(self, attribute: str) -> list[ResourceInfo]:
        """The ``k`` info pieces of one attribute."""
        return [
            ResourceInfo(attribute, float(v), self.provider_name(p))
            for p, v in enumerate(self._values[attribute])
        ]

    def total_info_pieces(self) -> int:
        """``m * k`` — the system-wide resource-information count."""
        return len(self.schema) * self.infos_per_attribute

    # ------------------------------------------------------------------
    # Query sampling
    # ------------------------------------------------------------------
    def sample_constraint(
        self,
        attribute: str,
        kind: QueryKind = QueryKind.RANGE,
        rng: np.random.Generator | None = None,
    ) -> AttributeConstraint:
        """One constraint on ``attribute`` of the requested ``kind``.

        RANGE constraints are placed in quantile space (see module
        docstring) so their expected hashed span is ``mean_span_fraction``
        regardless of the Pareto skew.  POINT constraints sample an
        *existing* provider value so that non-range queries have hits.
        """
        rng = rng if rng is not None else self._seeds.numpy("adhoc-constraint")
        spec = self.schema.spec(attribute)
        dist = spec.distribution
        if kind is QueryKind.POINT:
            values = self._values[attribute]
            return AttributeConstraint.point(
                attribute, float(values[int(rng.integers(len(values)))])
            )
        if kind is QueryKind.AT_LEAST:
            # Lower bound placed so the expected covered quantile mass is
            # mean_span_fraction: U ~ Uniform(1 - 2*msf, 1) covers on
            # average msf of the space.
            u = float(rng.uniform(1.0 - 2.0 * self.mean_span_fraction, 1.0))
            return AttributeConstraint.at_least(attribute, dist.ppf(u))
        span = float(rng.uniform(0.0, 2.0 * self.mean_span_fraction))
        start = float(rng.uniform(0.0, 1.0 - span))
        return AttributeConstraint.between(
            attribute, dist.ppf(start), dist.ppf(start + span)
        )

    def sample_multi_query(
        self,
        num_attributes: int,
        kind: QueryKind = QueryKind.RANGE,
        rng: np.random.Generator | None = None,
        requester: str = "requester",
    ) -> MultiAttributeQuery:
        """An m-attribute query over uniformly chosen distinct attributes."""
        require(
            1 <= num_attributes <= len(self.schema),
            f"num_attributes must be in [1, {len(self.schema)}], got {num_attributes}",
        )
        rng = rng if rng is not None else self._seeds.numpy("adhoc-query")
        chosen = rng.choice(len(self.schema), size=num_attributes, replace=False)
        constraints = tuple(
            self.sample_constraint(self.schema.specs[int(i)].name, kind, rng)
            for i in chosen
        )
        return MultiAttributeQuery(constraints, requester=requester)

    def query_stream(
        self,
        count: int,
        num_attributes: int,
        kind: QueryKind = QueryKind.RANGE,
        label: str = "queries",
    ) -> Iterator[MultiAttributeQuery]:
        """A deterministic stream of ``count`` multi-attribute queries."""
        rng = self._seeds.numpy(f"query-stream:{label}:{num_attributes}:{kind.value}")
        for i in range(count):
            yield self.sample_multi_query(
                num_attributes, kind, rng, requester=f"requester-{i:05d}"
            )

    # ------------------------------------------------------------------
    # Ground truth (for equivalence tests)
    # ------------------------------------------------------------------
    def matching_providers_bruteforce(self, query: MultiAttributeQuery) -> frozenset[str]:
        """Providers satisfying every constraint, by exhaustive scan."""
        result: set[str] | None = None
        for constraint in query.constraints:
            values = self._values[constraint.attribute]
            hits = {
                self.provider_name(p)
                for p, v in enumerate(values)
                if constraint.matches(float(v))
            }
            result = hits if result is None else (result & hits)
            if not result:
                return frozenset()
        return frozenset(result or set())
