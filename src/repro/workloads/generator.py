"""Resource and query generators reproducing the paper's workload.

* ``k`` providers per attribute report Bounded-Pareto values —
  :meth:`GridWorkload.resource_infos` yields the full ``m × k`` set of
  resource-information pieces.
* Query attributes are "randomly generated" — sampled uniformly without
  replacement.
* Range queries target the paper's *average case* of Theorem 4.9: the
  expected covered fraction of the (hashed) value space is 1/4, achieved by
  drawing the quantile span uniformly from ``[0, 1/2]`` and placing it
  uniformly inside the quantile space.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.core.resource import (
    AttributeConstraint,
    MultiAttributeQuery,
    ResourceInfo,
)
from repro.utils.seeding import SeedFactory
from repro.utils.validation import require
from repro.workloads.attributes import AttributeSchema
from repro.workloads.popularity import PopularityModel

__all__ = ["GridWorkload", "QueryKind"]


class QueryKind(str, Enum):
    """Shape of the generated per-attribute constraints."""

    POINT = "point"  # non-range query (Figures 4 / 6a)
    RANGE = "range"  # doubly-bounded range (Figures 5 / 6b)
    AT_LEAST = "at-least"  # one-sided range, "CPU >= 1.8GHz"


@dataclass
class GridWorkload:
    """Deterministic generator of providers, resource infos and queries.

    Parameters
    ----------
    schema:
        The globally-known attribute types.
    infos_per_attribute:
        ``k`` — resource-information pieces per attribute (paper: 500).
        Provider ``p`` reports one value for every attribute, so there are
        exactly ``k`` providers and ``m*k`` info pieces in total.
    seed:
        Master seed; the full workload is a pure function of it.
    mean_span_fraction:
        Expected quantile-space fraction covered by a RANGE constraint
        (paper's average case: 0.25).  The span is drawn uniformly from
        ``[0, 2 * mean_span_fraction]``.
    popularity:
        Optional :class:`~repro.workloads.popularity.PopularityModel`
        skewing attribute/value selection (Zipf, flash crowds).  ``None``
        (the default) keeps the paper's uniform sampling byte-identical
        to the pre-popularity code path; when set, query streams derive
        one rng per query *index* so sharded generation reproduces the
        serial stream exactly.
    """

    schema: AttributeSchema
    infos_per_attribute: int = 500
    seed: int = 0
    mean_span_fraction: float = 0.25
    popularity: PopularityModel | None = None
    _seeds: SeedFactory = field(init=False, repr=False)
    _values: dict[str, np.ndarray] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        require(self.infos_per_attribute >= 1, "need at least one info per attribute")
        require(
            0.0 < self.mean_span_fraction <= 0.5,
            f"mean_span_fraction must be in (0, 0.5], got {self.mean_span_fraction}",
        )
        self._seeds = SeedFactory(self.seed)
        rng = self._seeds.numpy("provider-values")
        self._values = {
            spec.name: np.asarray(
                spec.distribution.sample(rng, self.infos_per_attribute), dtype=float
            )
            for spec in self.schema
        }

    # ------------------------------------------------------------------
    # Providers and resource information
    # ------------------------------------------------------------------
    @property
    def num_providers(self) -> int:
        """Number of distinct providers (= ``k``)."""
        return self.infos_per_attribute

    def provider_name(self, index: int) -> str:
        """Stable provider address, ``grid-node-0042`` style."""
        return f"grid-node-{index:05d}"

    def provider_value(self, attribute: str, provider_index: int) -> float:
        """The value provider ``provider_index`` reports for ``attribute``."""
        return float(self._values[attribute][provider_index])

    def resource_infos(self) -> Iterator[ResourceInfo]:
        """All ``m * k`` resource-information pieces, provider-major order."""
        for p in range(self.num_providers):
            provider = self.provider_name(p)
            for spec in self.schema:
                yield ResourceInfo(spec.name, float(self._values[spec.name][p]), provider)

    def infos_for_attribute(self, attribute: str) -> list[ResourceInfo]:
        """The ``k`` info pieces of one attribute."""
        return [
            ResourceInfo(attribute, float(v), self.provider_name(p))
            for p, v in enumerate(self._values[attribute])
        ]

    def total_info_pieces(self) -> int:
        """``m * k`` — the system-wide resource-information count."""
        return len(self.schema) * self.infos_per_attribute

    # ------------------------------------------------------------------
    # Query sampling
    # ------------------------------------------------------------------
    def sample_constraint(
        self,
        attribute: str,
        kind: QueryKind = QueryKind.RANGE,
        rng: np.random.Generator | None = None,
        index: int | None = None,
    ) -> AttributeConstraint:
        """One constraint on ``attribute`` of the requested ``kind``.

        RANGE constraints are placed in quantile space (see module
        docstring) so their expected hashed span is ``mean_span_fraction``
        regardless of the Pareto skew.  POINT constraints sample an
        *existing* provider value so that non-range queries have hits.

        With a :attr:`popularity` model that skews values, the model's
        target quantile pulls the constraint toward hot values: POINT
        picks the provider value at that quantile, RANGE covers it,
        AT_LEAST anchors its lower bound near it.
        """
        rng = rng if rng is not None else self._seeds.numpy("adhoc-constraint")
        spec = self.schema.spec(attribute)
        dist = spec.distribution
        target: float | None = None
        if self.popularity is not None:
            target = self.popularity.value_quantile(rng, 0 if index is None else index)
        if kind is QueryKind.POINT:
            values = self._values[attribute]
            if target is None:
                pick = int(rng.integers(len(values)))
                return AttributeConstraint.point(attribute, float(values[pick]))
            ordered = np.sort(values)
            pick = min(int(target * len(ordered)), len(ordered) - 1)
            return AttributeConstraint.point(attribute, float(ordered[pick]))
        if kind is QueryKind.AT_LEAST:
            # Lower bound placed so the expected covered quantile mass is
            # mean_span_fraction: U ~ Uniform(1 - 2*msf, 1) covers on
            # average msf of the space.
            lo = 1.0 - 2.0 * self.mean_span_fraction
            if target is None:
                u = float(rng.uniform(lo, 1.0))
            else:
                u = min(max(target, lo), 1.0)
            return AttributeConstraint.at_least(attribute, dist.ppf(u))
        span = float(rng.uniform(0.0, 2.0 * self.mean_span_fraction))
        if target is None:
            start = float(rng.uniform(0.0, 1.0 - span))
        else:
            # Cover the hot quantile: the span is placed uniformly among
            # the positions that contain ``target``.
            start = target - span * float(rng.uniform(0.0, 1.0))
            start = min(max(start, 0.0), 1.0 - span)
        return AttributeConstraint.between(
            attribute, dist.ppf(start), dist.ppf(start + span)
        )

    def sample_multi_query(
        self,
        num_attributes: int,
        kind: QueryKind = QueryKind.RANGE,
        rng: np.random.Generator | None = None,
        requester: str = "requester",
        index: int | None = None,
    ) -> MultiAttributeQuery:
        """An m-attribute query over distinct attributes.

        Uniformly chosen without a :attr:`popularity` model (the paper's
        workload); otherwise the model weights the draw and ``index``
        positions the query in time (flash-crowd windows).
        """
        require(
            1 <= num_attributes <= len(self.schema),
            f"num_attributes must be in [1, {len(self.schema)}], got {num_attributes}",
        )
        rng = rng if rng is not None else self._seeds.numpy("adhoc-query")
        if self.popularity is None:
            chosen = rng.choice(len(self.schema), size=num_attributes, replace=False)
        else:
            chosen = self.popularity.choose_attributes(
                rng, len(self.schema), num_attributes, 0 if index is None else index
            )
        constraints = tuple(
            self.sample_constraint(self.schema.specs[int(i)].name, kind, rng, index=index)
            for i in chosen
        )
        return MultiAttributeQuery(constraints, requester=requester)

    def query_stream(
        self,
        count: int,
        num_attributes: int,
        kind: QueryKind = QueryKind.RANGE,
        label: str = "queries",
        start: int = 0,
    ) -> Iterator[MultiAttributeQuery]:
        """A deterministic stream of ``count`` multi-attribute queries.

        Without a :attr:`popularity` model the stream consumes one
        sequential rng (the seed behaviour, byte-identical).  With one,
        every query index derives its own rng, so ``start`` can shard the
        stream: generating ``[0, n)`` in one pass is identical to
        concatenating ``[0, k)`` and ``[k, n)`` passes — flash-crowd
        onsets land on the same queries under ``--parallel`` sharding.
        """
        if self.popularity is None:
            require(start == 0, "sharded streams need a popularity model")
            rng = self._seeds.numpy(f"query-stream:{label}:{num_attributes}:{kind.value}")
            for i in range(count):
                yield self.sample_multi_query(
                    num_attributes, kind, rng, requester=f"requester-{i:05d}"
                )
            return
        prefix = f"query-stream:{label}:{num_attributes}:{kind.value}"
        for i in range(start, start + count):
            rng = self._seeds.numpy(f"{prefix}:{i}")
            yield self.sample_multi_query(
                num_attributes, kind, rng, requester=f"requester-{i:05d}", index=i
            )

    # ------------------------------------------------------------------
    # Ground truth (for equivalence tests)
    # ------------------------------------------------------------------
    def matching_providers_bruteforce(self, query: MultiAttributeQuery) -> frozenset[str]:
        """Providers satisfying every constraint, by exhaustive scan."""
        result: set[str] | None = None
        for constraint in query.constraints:
            values = self._values[constraint.attribute]
            hits = {
                self.provider_name(p)
                for p, v in enumerate(values)
                if constraint.matches(float(v))
            }
            result = hits if result is None else (result & hits)
            if not result:
                return frozenset()
        return frozenset(result or set())
