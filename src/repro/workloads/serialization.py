"""Workload serialization — experiment artifacts you can re-run.

A :class:`~repro.workloads.generator.GridWorkload` is a pure function of its
parameters, so an experiment is fully described by a small JSON document:
the schema, k, the seed, and the span regime.  ``save_workload`` /
``load_workload`` round-trip that description so a published figure can
name the exact workload file that produced it, and a collaborator can
re-run it byte-identically without sharing the 100k generated values.

Materialised values can optionally be embedded (``include_values=True``)
for consumers without this library; on load they are verified against the
regenerated ones, catching version drift in the generator.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.utils.validation import require
from repro.workloads.attributes import AttributeSchema, AttributeSpec
from repro.workloads.generator import GridWorkload

__all__ = ["dump_workload", "load_workload", "save_workload"]

_FORMAT_VERSION = 1


def dump_workload(workload: GridWorkload, *, include_values: bool = False) -> dict:
    """The JSON-able description of ``workload``."""
    doc: dict = {
        "format_version": _FORMAT_VERSION,
        "seed": workload.seed,
        "infos_per_attribute": workload.infos_per_attribute,
        "mean_span_fraction": workload.mean_span_fraction,
        "schema": [
            {
                "name": spec.name,
                "lo": spec.lo,
                "hi": spec.hi,
                "pareto_shape": spec.pareto_shape,
                "categories": list(spec.categories),
            }
            for spec in workload.schema
        ],
    }
    if include_values:
        doc["values"] = {
            spec.name: [
                workload.provider_value(spec.name, p)
                for p in range(workload.num_providers)
            ]
            for spec in workload.schema
        }
    return doc


def save_workload(
    workload: GridWorkload, path: str | Path, *, include_values: bool = False
) -> Path:
    """Write the workload description to ``path`` (JSON)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(dump_workload(workload, include_values=include_values),
                               indent=2))
    return path


def load_workload(source: str | Path | dict) -> GridWorkload:
    """Reconstruct a workload from a file path or parsed document.

    If the document embeds values, they are checked against the
    regenerated ones; a mismatch raises, flagging generator drift.
    """
    if isinstance(source, (str, Path)):
        doc = json.loads(Path(source).read_text())
    else:
        doc = source
    require(
        doc.get("format_version") == _FORMAT_VERSION,
        f"unsupported workload format version {doc.get('format_version')!r}",
    )
    schema = AttributeSchema(
        tuple(
            AttributeSpec(
                name=entry["name"],
                lo=entry["lo"],
                hi=entry["hi"],
                pareto_shape=entry["pareto_shape"],
                categories=tuple(entry.get("categories", ())),
            )
            for entry in doc["schema"]
        )
    )
    workload = GridWorkload(
        schema=schema,
        infos_per_attribute=doc["infos_per_attribute"],
        seed=doc["seed"],
        mean_span_fraction=doc["mean_span_fraction"],
    )
    embedded = doc.get("values")
    if embedded is not None:
        for name, values in embedded.items():
            regenerated = [
                workload.provider_value(name, p) for p in range(len(values))
            ]
            require(
                np.allclose(values, regenerated),
                f"embedded values for {name!r} do not match the regenerated "
                f"workload — generator version drift?",
            )
    return workload
