"""Grid resource-attribute schema.

The paper assumes "each resource is described by a set of attributes with
globally known types" — CPU speed, free memory, OS, and so on — with m=200
attribute types in the evaluation.  :class:`AttributeSpec` describes one
attribute (its value domain and Bounded-Pareto value distribution);
:class:`AttributeSchema` is the globally-known collection plus the factory
for per-attribute locality-preserving hashes.

String-valued attributes (``OS=Linux``) are modelled as a small categorical
domain whose categories are encoded to evenly spaced numeric codes — the
paper likewise funnels "value or string description" through the same
locality-preserving hash.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.hashing.locality import (
    CdfLocalityHash,
    LinearLocalityHash,
    LocalityPreservingHash,
)
from repro.utils.validation import require
from repro.workloads.pareto import BoundedPareto

__all__ = ["AttributeSpec", "AttributeSchema", "REALISTIC_GRID_ATTRIBUTES"]


@dataclass(frozen=True)
class AttributeSpec:
    """One globally-known attribute type: domain plus value distribution.

    Examples
    --------
    >>> spec = AttributeSpec("cpu-mhz", 100.0, 5000.0, pareto_shape=2.0)
    >>> 100.0 <= spec.distribution.mean() <= 5000.0
    True
    """

    name: str
    lo: float
    hi: float
    pareto_shape: float = 2.0
    #: Category labels for string-valued attributes; empty = numeric.
    categories: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        require(self.hi > self.lo, f"{self.name}: need hi > lo")
        require(self.lo > 0, f"{self.name}: Bounded Pareto needs lo > 0")

    @property
    def distribution(self) -> BoundedPareto:
        """The Bounded-Pareto value distribution on [lo, hi]."""
        return BoundedPareto(alpha=self.pareto_shape, low=self.lo, high=self.hi)

    @property
    def is_categorical(self) -> bool:
        """Whether values are string categories encoded to numeric codes."""
        return bool(self.categories)

    def encode_category(self, label: str) -> float:
        """Numeric code of a category label, evenly spaced over [lo, hi]."""
        require(self.is_categorical, f"{self.name} is not categorical")
        idx = self.categories.index(label)
        step = (self.hi - self.lo) / len(self.categories)
        return self.lo + (idx + 0.5) * step

    def value_hash(self, size: int, kind: str = "cdf") -> LocalityPreservingHash:
        """The locality-preserving hash ℋ for this attribute.

        ``kind='cdf'`` calibrates against the attribute's Bounded-Pareto CDF
        (the default used at paper scale); ``kind='linear'`` is the plain
        affine map (ablation).
        """
        if kind == "linear":
            return LinearLocalityHash(size=size, lo=self.lo, hi=self.hi)
        if kind == "cdf":
            return CdfLocalityHash(
                size=size, lo=self.lo, hi=self.hi, cdf=self.distribution.cdf
            )
        raise ValueError(f"unknown LPH kind {kind!r} (expected 'cdf' or 'linear')")


#: Hand-written specs for the grid attributes the paper's introduction
#: motivates; synthetic schemas start from these and pad to m attributes.
REALISTIC_GRID_ATTRIBUTES: tuple[AttributeSpec, ...] = (
    AttributeSpec("cpu-mhz", 100.0, 5000.0),
    AttributeSpec("free-memory-mb", 16.0, 65536.0),
    AttributeSpec("disk-gb", 1.0, 4096.0),
    AttributeSpec("network-mbps", 1.0, 10000.0),
    AttributeSpec("num-cores", 1.0, 128.0),
    AttributeSpec(
        "os",
        1.0,
        9.0,
        categories=("linux", "solaris", "aix", "windows", "hpux", "irix", "bsd", "macos"),
    ),
)


@dataclass(frozen=True)
class AttributeSchema:
    """The globally-known set of attribute types for one grid deployment."""

    specs: tuple[AttributeSpec, ...]
    _by_name: dict = field(init=False, repr=False, hash=False, compare=False)

    def __post_init__(self) -> None:
        names = [s.name for s in self.specs]
        require(len(set(names)) == len(names), f"duplicate attribute names: {names}")
        object.__setattr__(self, "_by_name", {s.name: s for s in self.specs})

    @classmethod
    def synthetic(
        cls,
        num_attributes: int,
        *,
        pareto_shape: float = 2.0,
        base: Sequence[AttributeSpec] = REALISTIC_GRID_ATTRIBUTES,
    ) -> "AttributeSchema":
        """A schema of ``num_attributes`` types (the paper uses 200).

        Starts from the realistic grid attributes and pads with generated
        numeric attributes ``attr-006``, ``attr-007``, … with varied
        domains.
        """
        require(num_attributes >= 1, "need at least one attribute")
        specs = list(base[:num_attributes])
        idx = len(specs)
        while len(specs) < num_attributes:
            # Vary the domain deterministically so attributes are not clones.
            lo = 1.0 + (idx % 7)
            hi = lo * (50.0 + 25.0 * (idx % 13))
            specs.append(
                AttributeSpec(f"attr-{idx:03d}", lo, hi, pareto_shape=pareto_shape)
            )
            idx += 1
        return cls(tuple(specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self.specs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> tuple[str, ...]:
        """All attribute names, in schema order."""
        return tuple(s.name for s in self.specs)

    def spec(self, name: str) -> AttributeSpec:
        """The spec for attribute ``name``."""
        return self._by_name[name]
