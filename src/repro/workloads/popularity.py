"""Skewed-popularity models for the query workload.

The paper samples query attributes *uniformly* (Section V), which makes
every system look balanced by construction.  Production resource-discovery
traffic is nothing like that: attribute popularity follows a Zipf law, and
sudden flash crowds concentrate a large share of all queries on one or two
attributes for a bounded time window.  This module supplies those models
as drop-in strategies for :class:`~repro.workloads.generator.GridWorkload`:

* :class:`UniformPopularity` — the paper's model, made explicit;
* :class:`ZipfPopularity` — rank-``r`` attribute drawn with probability
  proportional to ``1 / (r + 1) ** s``, with an optional *value-level*
  Zipf (hot provider values / hot quantile cells for range queries);
* :class:`FlashCrowdPopularity` — a base model plus a time-windowed crowd:
  for query indices inside ``[onset, onset + duration)`` each query
  targets the hot attribute set with probability ``crowd_share``.

Every decision is a pure function of ``(model, per-query rng, index)``;
the workload derives one rng per query index, so streams are reproducible
across serial and sharded (``--parallel``) generation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require

__all__ = [
    "PopularityModel",
    "UniformPopularity",
    "ZipfPopularity",
    "FlashCrowdPopularity",
    "stable_seed",
    "zipf_weights",
]

#: Quantile cells the value-level Zipf chooses between for range queries.
VALUE_CELLS = 16


def stable_seed(*parts: object) -> int:
    """A process-independent 63-bit seed from arbitrary labelled parts.

    Python's built-in ``hash`` is salted per process for strings, so it
    must never feed a reproducible rng; this digest-based derivation is a
    pure function of its arguments.
    """
    digest = hashlib.blake2s("|".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") % (1 << 63)


def zipf_weights(count: int, s: float) -> np.ndarray:
    """Normalized Zipf probabilities over ``count`` ranks (rank 0 hottest)."""
    require(count >= 1, "need at least one rank")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-s)
    return weights / weights.sum()


@dataclass(frozen=True)
class PopularityModel:
    """Base popularity model: the paper's uniform-random selection.

    Subclasses override :meth:`attribute_weights` (per-attribute selection
    probabilities, possibly index-dependent) and :meth:`value_quantile`
    (a target quantile in ``[0, 1)`` concentrating value-level load, or
    ``None`` for the uniform value placement of the seed workload).
    """

    #: Seed of the model's internal permutations (which attribute is hot).
    seed: int = 0

    def attribute_weights(self, num_attributes: int, index: int) -> np.ndarray | None:
        """Selection probabilities over the schema for query ``index``.

        ``None`` means uniform — the caller then uses an unweighted draw.
        """
        return None

    def value_quantile(self, rng: np.random.Generator, index: int) -> float | None:
        """A target quantile for value-level skew (``None`` = uniform)."""
        return None

    def choose_attributes(
        self, rng: np.random.Generator, num_attributes: int, count: int, index: int
    ) -> np.ndarray:
        """Draw ``count`` distinct attribute indices for query ``index``."""
        weights = self.attribute_weights(num_attributes, index)
        if weights is None:
            return rng.choice(num_attributes, size=count, replace=False)
        return rng.choice(num_attributes, size=count, replace=False, p=weights)

    def describe(self) -> str:
        """One-line human-readable summary for reports."""
        return "uniform"


@dataclass(frozen=True)
class UniformPopularity(PopularityModel):
    """The paper's uniform attribute selection, as an explicit model."""


@dataclass(frozen=True)
class ZipfPopularity(PopularityModel):
    """Zipf-skewed attribute (and optionally value) popularity.

    Parameters
    ----------
    s:
        Attribute-level Zipf exponent; ``0`` degenerates to uniform.
    value_s:
        Value-level exponent.  When positive, point queries prefer hot
        provider values and range queries concentrate around hot quantile
        cells, so value-rooted directories (Mercury hubs, MAAN's value
        map) develop hotspots too.
    seed:
        Seeds the rank permutations, so *which* attribute is hot is
        deterministic but not simply "the first one in the schema".
    """

    s: float = 1.1
    value_s: float = 0.0
    _cache: dict = field(default_factory=dict, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        require(self.s >= 0.0, f"zipf exponent s must be >= 0, got {self.s}")
        require(self.value_s >= 0.0, f"value_s must be >= 0, got {self.value_s}")

    def _permutation(self, label: str, count: int) -> np.ndarray:
        key = (label, count)
        found = self._cache.get(key)
        if found is None:
            rng = np.random.default_rng(stable_seed("zipf-perm", self.seed, label, count))
            found = rng.permutation(count)
            self._cache[key] = found
        return found

    def rank_order(self, num_attributes: int) -> np.ndarray:
        """Attribute indices from hottest to coldest (seeded permutation)."""
        return self._permutation("attributes", num_attributes)

    def hot_attributes(self, num_attributes: int, count: int = 1) -> tuple[int, ...]:
        """The ``count`` hottest attribute indices under this model."""
        return tuple(int(i) for i in self.rank_order(num_attributes)[:count])

    def attribute_weights(self, num_attributes: int, index: int) -> np.ndarray | None:
        if self.s == 0.0:
            return None
        key = ("weights", num_attributes)
        weights = self._cache.get(key)
        if weights is None:
            by_rank = zipf_weights(num_attributes, self.s)
            weights = np.empty(num_attributes)
            weights[self.rank_order(num_attributes)] = by_rank
            self._cache[key] = weights
        return weights

    def value_quantile(self, rng: np.random.Generator, index: int) -> float | None:
        if self.value_s == 0.0:
            return None
        by_rank = zipf_weights(VALUE_CELLS, self.value_s)
        cell_order = self._permutation("values", VALUE_CELLS)
        cell = int(cell_order[int(rng.choice(VALUE_CELLS, p=by_rank))])
        return (cell + float(rng.uniform(0.0, 1.0))) / VALUE_CELLS

    def describe(self) -> str:
        out = f"zipf(s={self.s:g})"
        if self.value_s > 0.0:
            out += f" x value-zipf(s={self.value_s:g})"
        return out


@dataclass(frozen=True)
class FlashCrowdPopularity(PopularityModel):
    """A base model plus a time-windowed flash crowd.

    Query indices in ``[onset, onset + duration)`` are crowd queries with
    probability ``crowd_share``; a crowd query draws all its attributes
    from the ``hot_attributes`` hottest ranks of the base model (uniform
    base: the first ranks of a seeded permutation).  Outside the window —
    and for the non-crowd share inside it — the base model applies
    unchanged, so the onset is visible as a step in per-node load.
    """

    base: PopularityModel = field(default_factory=UniformPopularity)
    onset: int = 0
    duration: int = 0
    crowd_share: float = 0.8
    hot_attributes: int = 1

    def __post_init__(self) -> None:
        require(self.onset >= 0, "onset must be >= 0")
        require(self.duration >= 0, "duration must be >= 0")
        require(0.0 <= self.crowd_share <= 1.0, "crowd_share must be in [0, 1]")
        require(self.hot_attributes >= 1, "need at least one hot attribute")

    def in_window(self, index: int) -> bool:
        """Whether query ``index`` falls inside the crowd window."""
        return self.onset <= index < self.onset + self.duration

    def _hot_set(self, num_attributes: int) -> tuple[int, ...]:
        count = min(self.hot_attributes, num_attributes)
        if isinstance(self.base, ZipfPopularity):
            return self.base.hot_attributes(num_attributes, count)
        rng = np.random.default_rng(stable_seed("flash-hot", self.seed, num_attributes))
        return tuple(int(i) for i in rng.permutation(num_attributes)[:count])

    def choose_attributes(
        self, rng: np.random.Generator, num_attributes: int, count: int, index: int
    ) -> np.ndarray:
        if self.in_window(index) and float(rng.uniform()) < self.crowd_share:
            hot = self._hot_set(num_attributes)
            if count <= len(hot):
                return rng.choice(np.asarray(hot), size=count, replace=False)
            # Crowd queries over more attributes than the hot set: the hot
            # set plus uniform filler from the remaining attributes.
            rest = np.setdiff1d(np.arange(num_attributes), np.asarray(hot))
            filler = rng.choice(rest, size=count - len(hot), replace=False)
            return np.concatenate([np.asarray(hot), filler])
        return self.base.choose_attributes(rng, num_attributes, count, index)

    def value_quantile(self, rng: np.random.Generator, index: int) -> float | None:
        return self.base.value_quantile(rng, index)

    def describe(self) -> str:
        return (
            f"flash-crowd(onset={self.onset}, duration={self.duration}, "
            f"share={self.crowd_share:g}, hot={self.hot_attributes}) "
            f"over {self.base.describe()}"
        )
